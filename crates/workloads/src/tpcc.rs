//! The TPC-C benchmark (paper §5.2–§5.3).
//!
//! Nine tables; objects up to ~660 B. Four tables are accessed across the
//! cluster through the replicated KV store — WAREHOUSE, DISTRICT,
//! CUSTOMER, STOCK — while ORDER, NEW-ORDER, ORDER-LINE, and HISTORY are
//! "B+ trees local to their respective coordinators" (real
//! [`xenic_store::BTree`]s here, whose measured node visits are charged as
//! coordinator host time), and ITEM is a read-only replica at every node.
//!
//! Two variants, matching the paper's two experiments:
//!
//! * [`TpccMix::NewOrderOnly`] (§5.2, Figure 8a): only new-order
//!   transactions, with item supply warehouses "picked from partitions
//!   chosen uniformly at random" — the DrTM+H authors' strenuous remote
//!   access pattern.
//! * [`TpccMix::Full`] (§5.3, Figure 8b): the standard five-type mix
//!   (new-order 45%, payment 43%, order-status 4%, delivery 4%,
//!   stock-level 4%), standard remote probabilities (~1% remote stock,
//!   15% remote customer for payment). Throughput is reported as
//!   new-order transactions only (`metric` flag).
//!
//! Per the paper (§5.3), long-running local transactions are chopped:
//! each Delivery call processes one district.
//!
//! # Modeling notes
//!
//! Local-tree mutations are applied when the transaction is *generated*
//! (with their measured cost charged to the coordinator host at
//! initiation). The KV side — locking, version checks, replication —
//! flows through the full commit protocol; the local trees have no
//! cross-node readers, so this reordering does not affect any measured
//! metric.

use xenic::api::{make_key, ScanSpec, ShipMode, TxnSpec, UpdateOp, Workload};
use xenic_sim::DetRng;
use xenic_store::{BTree, Key, Value};

/// Per-node-visit B+tree traversal cost on a host core, ns.
const TREE_VISIT_NS: u64 = 35;
/// Cost of one B+tree insert beyond the traversal, ns.
const TREE_INSERT_NS: u64 = 60;
/// Cost of one ITEM-replica lookup, ns.
const ITEM_READ_NS: u64 = 80;

// Table tags inside the shard-local keyspace.
const T_WAREHOUSE: u64 = 0;
const T_DISTRICT: u64 = 1;
const T_CUSTOMER: u64 = 2;
const T_STOCK: u64 = 3;
/// ORDER rows mirrored into the replicated KV store — only in the
/// [`TpccMix::StockScan`] variant, where stock-level reads them back
/// through a real ordered-index range scan.
const T_ORDER: u64 = 4;
const TABLE_SHIFT: u32 = 48;

/// Orders preloaded per district in the StockScan variant, so the first
/// stock-level scans observe a non-empty window.
const SEED_ORDERS: u32 = 10;
/// Largest order id representable in the ORDER key packing.
const MAX_O_ID: u32 = (1 << 28) - 1;

/// Which transaction mix to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TpccMix {
    /// New-order transactions only, uniform-random supply partitions.
    NewOrderOnly,
    /// Payment transactions only. Not a paper experiment; used by the
    /// consistency tests, where payments' double-entry YTD updates
    /// (warehouse and district must move in lockstep) make lost updates
    /// visible as a balance mismatch.
    PaymentOnly,
    /// The standard five-type mix.
    Full,
    /// The five-type mix with ORDER rows mirrored into the replicated KV
    /// store: new-order inserts the order row, and stock-level reads the
    /// district's recent-order window back through a phantom-checked
    /// ordered-index scan ([`xenic::api::ScanSpec`]) instead of a purely
    /// coordinator-local tree walk. Stock-level is upweighted (12%) so
    /// the scan path carries measurable load; throughput is still
    /// reported as new-order transactions only.
    StockScan,
}

/// TPC-C configuration.
#[derive(Clone, Copy, Debug)]
pub struct TpccConfig {
    /// Warehouses per node (paper: 72).
    pub warehouses_per_node: u32,
    /// Cluster size.
    pub nodes: u32,
    /// Districts per warehouse (spec: 10).
    pub districts: u32,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u32,
    /// Items (spec: 100 000), replicated read-only at every node.
    pub items: u32,
    /// Transaction mix.
    pub mix: TpccMix,
}

impl TpccConfig {
    /// The paper's §5.2 configuration at full spec sizes.
    pub fn paper(nodes: u32, mix: TpccMix) -> Self {
        TpccConfig {
            warehouses_per_node: 72,
            nodes,
            districts: 10,
            customers_per_district: 3000,
            items: 100_000,
            mix,
        }
    }

    /// Simulation scale: fewer warehouses/customers/items, same access
    /// pattern and remote fractions.
    pub fn sim(nodes: u32, mix: TpccMix) -> Self {
        TpccConfig {
            warehouses_per_node: 24,
            nodes,
            districts: 10,
            customers_per_district: 300,
            items: 10_000,
            mix,
        }
    }

    /// §5.3's DrTM+R comparison scale: 384 warehouses total (64/node on
    /// 6 nodes), scaled down 1/8 like `sim`.
    pub fn sim_drtmr(nodes: u32) -> Self {
        TpccConfig {
            // 384 warehouses / 6 nodes = 64, scaled by the same 1/3 as sim.
            warehouses_per_node: 21,
            ..Self::sim(nodes, TpccMix::Full)
        }
    }
}

/// The TPC-C workload generator for one node, owning that coordinator's
/// local B+trees.
pub struct Tpcc {
    cfg: TpccConfig,
    /// ORDER rows: key → customer id.
    orders: BTree<u32>,
    /// NEW-ORDER rows (undelivered orders).
    new_orders: BTree<()>,
    /// ORDER-LINE rows: key → item id.
    order_lines: BTree<u32>,
    /// HISTORY appends (cost-only; count tracked).
    history_rows: u64,
    /// Local mirror of each district's next order id.
    next_o_id: Vec<u32>,
    /// Delivery cursor: next district to deliver per warehouse.
    deliver_cursor: Vec<u32>,
    /// Customer-by-last-name secondary index (spec: 60% of Payment and
    /// Order-Status select the customer by last name): a real B+tree
    /// keyed `(w_local, district, lastname, c_id)`, range-scanned to the
    /// median match as the spec requires.
    cust_by_name: BTree<u32>,
    /// Distinct last names per district.
    lastnames: u32,
    /// Reusable scratch for stock-level's distinct-item collection —
    /// keeps the generator allocation-free at steady state.
    scratch_items: Vec<u32>,
}

impl Tpcc {
    /// Creates a generator for one coordinator node.
    pub fn new(cfg: TpccConfig) -> Self {
        let slots = (cfg.warehouses_per_node * cfg.districts) as usize;
        // The spec's C_LAST takes one of 1000 syllable triples; scale the
        // name space with the customer count so each name matches a
        // handful of customers, as at full scale.
        let lastnames = (cfg.customers_per_district / 3).clamp(1, 1000);
        let mut cust_by_name = BTree::with_order(32);
        for w in 0..cfg.warehouses_per_node {
            for d in 0..cfg.districts {
                for c in 0..cfg.customers_per_district {
                    let lname = Self::lastname_of(c, lastnames);
                    cust_by_name.insert(Self::name_key(w, d, lname, c), c);
                }
            }
        }
        Tpcc {
            cfg,
            orders: BTree::with_order(32),
            new_orders: BTree::with_order(32),
            order_lines: BTree::with_order(32),
            history_rows: 0,
            // StockScan preloads SEED_ORDERS KV order rows per district.
            next_o_id: vec![
                if cfg.mix == TpccMix::StockScan {
                    SEED_ORDERS + 1
                } else {
                    1
                };
                slots
            ],
            deliver_cursor: vec![0; cfg.warehouses_per_node as usize],
            cust_by_name,
            lastnames,
            scratch_items: Vec::new(),
        }
    }

    /// Deterministic last-name assignment (the spec hashes C_ID through
    /// NURand at load time; a mixed hash gives the same many-to-one
    /// shape).
    fn lastname_of(c: u32, lastnames: u32) -> u32 {
        (c.wrapping_mul(2654435761) >> 7) % lastnames
    }

    /// Secondary-index key: (w_local, district, lastname, c_id).
    fn name_key(w_local: u32, d: u32, lname: u32, c: u32) -> u64 {
        ((u64::from(w_local) * 16 + u64::from(d)) << 40)
            | (u64::from(lname) << 20)
            | u64::from(c)
    }

    /// Selects a customer: 60% by last name through a real range scan of
    /// the secondary index (median match, per the spec), 40% by id.
    /// Returns `(c_id, tree-work ns)`.
    fn select_customer(&self, w_local: u32, d: u32, rng: &mut DetRng) -> (u32, u64) {
        let cpd = u64::from(self.cfg.customers_per_district);
        if rng.chance(0.6) {
            let lname = rng.nurand(
                Self::nurand_a(u64::from(self.lastnames)),
                0,
                u64::from(self.lastnames) - 1,
            ) as u32;
            let lo = Self::name_key(w_local, d, lname, 0);
            let hi = Self::name_key(w_local, d, lname, u32::MAX >> 12);
            let mut n = 0usize;
            self.cust_by_name.range_visit(lo, hi, &mut |_, _| {
                n += 1;
                true
            });
            let work = TREE_VISIT_NS * (4 + n as u64);
            if n == 0 {
                (rng.below(cpd) as u32, work)
            } else {
                // Spec: position n/2 rounded up in the sorted matches.
                // Second zero-alloc walk stops at the median.
                let mut idx = 0usize;
                let mut picked = 0u32;
                self.cust_by_name.range_visit(lo, hi, &mut |_, c| {
                    if idx == n / 2 {
                        picked = *c;
                        false
                    } else {
                        idx += 1;
                        true
                    }
                });
                (picked, work)
            }
        } else {
            let c = rng.nurand(Self::nurand_a(cpd), 0, cpd - 1) as u32;
            (c, TREE_VISIT_NS)
        }
    }

    /// Rows in the local ORDER tree (diagnostics).
    pub fn order_rows(&self) -> usize {
        self.orders.len()
    }

    /// HISTORY rows appended.
    pub fn history_rows(&self) -> u64 {
        self.history_rows
    }

    // ---- Key packing ----
    //
    // The warehouse/district builders are public so consistency tests can
    // locate the YTD counters and NEXT_O_ID serialization points in the
    // stores and in recorded histories.

    /// KV key of warehouse `w_local`'s row on `shard`.
    pub fn warehouse_key(&self, shard: u32, w_local: u32) -> Key {
        make_key(shard, (T_WAREHOUSE << TABLE_SHIFT) | u64::from(w_local))
    }

    /// KV key of district `d` of warehouse `w_local` on `shard`.
    pub fn district_key(&self, shard: u32, w_local: u32, d: u32) -> Key {
        make_key(
            shard,
            (T_DISTRICT << TABLE_SHIFT) | (u64::from(w_local) * 16 + u64::from(d)),
        )
    }

    fn customer_key(&self, shard: u32, w_local: u32, d: u32, c: u32) -> Key {
        make_key(
            shard,
            (T_CUSTOMER << TABLE_SHIFT)
                | ((u64::from(w_local) * 16 + u64::from(d)) << 16)
                | u64::from(c),
        )
    }

    fn stock_key(&self, shard: u32, w_local: u32, i: u32) -> Key {
        make_key(
            shard,
            (T_STOCK << TABLE_SHIFT) | (u64::from(w_local) << 20) | u64::from(i),
        )
    }

    /// KV key of the mirrored ORDER row (StockScan variant). Public so
    /// tests can assert which district a scanned range covers. Orders of
    /// one district are contiguous, so `[order_key(.., lo) ..=
    /// order_key(.., hi)]` is exactly that district's order-id window.
    pub fn order_key(&self, shard: u32, w_local: u32, d: u32, o_id: u32) -> Key {
        debug_assert!(o_id <= MAX_O_ID);
        make_key(
            shard,
            (T_ORDER << TABLE_SHIFT)
                | ((u64::from(w_local) * 16 + u64::from(d)) << 28)
                | u64::from(o_id),
        )
    }

    /// Local-tree key for (w_local, district, order, line).
    fn tree_key(w_local: u32, d: u32, o_id: u32, line: u32) -> u64 {
        (u64::from(w_local) * 16 + u64::from(d)) << 40 | u64::from(o_id) << 8 | u64::from(line)
    }

    fn district_slot(&self, w_local: u32, d: u32) -> usize {
        (w_local * self.cfg.districts + d) as usize
    }

    /// TPC-C NURand `A` constant scaled to the configured keyspace: the
    /// spec pairs A=8191 with 100k items and A=1023 with 3000 customers;
    /// at reduced sim scale the constant must shrink proportionally or
    /// the hotspot skew (and abort rate) is artificially inflated.
    fn nurand_a(range: u64) -> u64 {
        let target = (range / 12).max(1);
        let mut a = 1u64;
        while a * 2 <= target {
            a *= 2;
        }
        a * 2 - 1
    }

    // ---- Transactions ----

    /// Builds a new-order transaction from home warehouse `w_local` on
    /// `shard`. Supply warehouses are uniform-random partitions in the
    /// NewOrderOnly mix, 99% home in the Full mix.
    fn new_order(&mut self, shard: u32, rng: &mut DetRng) -> TxnSpec {
        let cfg = self.cfg;
        let w_local = rng.below(u64::from(cfg.warehouses_per_node)) as u32;
        let d = rng.below(u64::from(cfg.districts)) as u32;
        let c = rng.nurand(
            Self::nurand_a(u64::from(cfg.customers_per_district)),
            0,
            u64::from(cfg.customers_per_district) - 1,
        ) as u32;
        let ol_cnt = rng.range_inclusive(5, 15) as u32;

        let mut local_work: u64 = 0;
        let mut updates = Vec::with_capacity(1 + ol_cnt as usize);
        // District: increment next_o_id (the serialization point).
        updates.push((self.district_key(shard, w_local, d), UpdateOp::AddI64(1)));
        // Stock updates, possibly remote.
        for _ in 0..ol_cnt {
            let i = rng.nurand(
                Self::nurand_a(u64::from(cfg.items)),
                0,
                u64::from(cfg.items) - 1,
            ) as u32;
            let (s_shard, s_w) = match cfg.mix {
                TpccMix::NewOrderOnly => {
                    // Uniform-random partition (the DrTM+H access pattern).
                    let s = rng.below(u64::from(cfg.nodes)) as u32;
                    (s, rng.below(u64::from(cfg.warehouses_per_node)) as u32)
                }
                TpccMix::PaymentOnly | TpccMix::Full | TpccMix::StockScan => {
                    if rng.chance(0.01) {
                        let s = rng.below(u64::from(cfg.nodes)) as u32;
                        (s, rng.below(u64::from(cfg.warehouses_per_node)) as u32)
                    } else {
                        (shard, w_local)
                    }
                }
            };
            let qty = rng.range_inclusive(1, 10) as i64;
            updates.push((self.stock_key(s_shard, s_w, i), UpdateOp::AddI64(-qty)));
            // ITEM is a local read-only replica.
            local_work += ITEM_READ_NS;
        }
        // Reads: warehouse tax rate + customer discount (home shard).
        let reads = vec![
            self.warehouse_key(shard, w_local),
            self.customer_key(shard, w_local, d, c),
        ];
        // Local B+tree inserts: ORDER, NEW-ORDER, ORDER-LINE × ol_cnt —
        // real tree operations, measured and charged.
        let slot = self.district_slot(w_local, d);
        let o_id = self.next_o_id[slot];
        self.next_o_id[slot] += 1;
        let okey = Self::tree_key(w_local, d, o_id, 0);
        self.orders.insert(okey, c);
        self.new_orders.insert(okey, ());
        let (_, visits) = self.orders.get_traced(okey);
        local_work += 2 * (visits as u64 * TREE_VISIT_NS + TREE_INSERT_NS);
        for line in 0..ol_cnt {
            self.order_lines
                .insert(Self::tree_key(w_local, d, o_id, line + 1), 0);
            local_work += visits as u64 * TREE_VISIT_NS + TREE_INSERT_NS;
        }
        // StockScan: mirror the ORDER row into the KV store so stock-level
        // scans observe it — this is the insert that phantom validation
        // must defend against.
        let inserts = if cfg.mix == TpccMix::StockScan {
            vec![(
                self.order_key(shard, w_local, d, o_id),
                Value::filled(24, 0xA7),
            )]
        } else {
            vec![]
        };

        TxnSpec {
            reads,
            updates,
            inserts,
            exec_host_ns: 500,
            exec_nic_ns: 1600,
            ship: ShipMode::Nic,
            local_work_ns: local_work,
            metric: true,
            rounds: Vec::new(),
            scans: vec![],
        }
    }

    /// Payment: warehouse + district YTD updates (home), customer balance
    /// update (15% at a remote warehouse), HISTORY append (local).
    fn payment(&mut self, shard: u32, rng: &mut DetRng) -> TxnSpec {
        let cfg = self.cfg;
        let w_local = rng.below(u64::from(cfg.warehouses_per_node)) as u32;
        let d = rng.below(u64::from(cfg.districts)) as u32;
        let amount = rng.range_inclusive(100, 500_000) as i64;
        // Remote customers are selected by id (their name index lives at
        // their home coordinator); home customers 60%-by-name per spec.
        let (c_shard, c_w, c, name_work) = if rng.chance(0.15) {
            let s = rng.below(u64::from(cfg.nodes)) as u32;
            let w = rng.below(u64::from(cfg.warehouses_per_node)) as u32;
            let c = rng.nurand(
                Self::nurand_a(u64::from(cfg.customers_per_district)),
                0,
                u64::from(cfg.customers_per_district) - 1,
            ) as u32;
            (s, w, c, 0)
        } else {
            let (c, work) = self.select_customer(w_local, d, rng);
            (shard, w_local, c, work)
        };
        self.history_rows += 1;
        TxnSpec {
            reads: vec![],
            updates: vec![
                (self.warehouse_key(shard, w_local), UpdateOp::AddI64(amount)),
                (
                    self.district_key(shard, w_local, d),
                    UpdateOp::AddI64(amount),
                ),
                (
                    self.customer_key(c_shard, c_w, d, c),
                    UpdateOp::AddI64(-amount),
                ),
            ],
            inserts: vec![],
            exec_host_ns: 350,
            exec_nic_ns: 1100,
            ship: ShipMode::Nic,
            local_work_ns: 250 + name_work, // HISTORY append + name scan
            metric: false,
            rounds: Vec::new(),
            scans: vec![],
        }
    }

    /// Order-status: read-only, home shard — customer row plus local
    /// ORDER / ORDER-LINE tree reads.
    fn order_status(&mut self, shard: u32, rng: &mut DetRng) -> TxnSpec {
        let cfg = self.cfg;
        let w_local = rng.below(u64::from(cfg.warehouses_per_node)) as u32;
        let d = rng.below(u64::from(cfg.districts)) as u32;
        let (c, name_work) = self.select_customer(w_local, d, rng);
        // Walk the customer's most recent order in the local trees.
        let slot = self.district_slot(w_local, d);
        let last = self.next_o_id[slot].saturating_sub(1);
        let mut local_work = 300u64 + name_work;
        if last > 0 {
            let okey = Self::tree_key(w_local, d, last, 0);
            let (_, visits) = self.orders.get_traced(okey);
            local_work += visits as u64 * TREE_VISIT_NS;
            let mut lines = 0u64;
            self.order_lines
                .range_visit(okey + 1, Self::tree_key(w_local, d, last, 255), &mut |_, _| {
                    lines += 1;
                    true
                });
            local_work += (lines + 1) * TREE_VISIT_NS;
        }
        TxnSpec {
            reads: vec![self.customer_key(shard, w_local, d, c)],
            updates: vec![],
            inserts: vec![],
            exec_host_ns: 200,
            exec_nic_ns: 0,
            ship: ShipMode::Host,
            local_work_ns: local_work,
            metric: false,
            rounds: Vec::new(),
            scans: vec![],
        }
    }

    /// Delivery (chopped: one district per call): pop the oldest
    /// undelivered order, sum its lines, credit the customer.
    fn delivery(&mut self, shard: u32, rng: &mut DetRng) -> TxnSpec {
        let cfg = self.cfg;
        let w_local = rng.below(u64::from(cfg.warehouses_per_node)) as u32;
        let cursor = &mut self.deliver_cursor[w_local as usize];
        let d = *cursor % cfg.districts;
        *cursor += 1;
        let lo = Self::tree_key(w_local, d, 0, 0);
        let hi = Self::tree_key(w_local, d, u32::MAX >> 8, 0);
        let mut local_work = 200u64;
        let mut customer = None;
        if let Some((okey, _)) = self.new_orders.first_at_or_after(lo) {
            if okey <= hi {
                self.new_orders.remove(okey);
                let (c, visits) = {
                    let (c, v) = self.orders.get_traced(okey);
                    (c.copied(), v)
                };
                local_work += 2 * visits as u64 * TREE_VISIT_NS;
                let mut lines = 0u64;
                self.order_lines.range_visit(okey + 1, okey + 255, &mut |_, _| {
                    lines += 1;
                    true
                });
                local_work += (lines + 1) * (TREE_VISIT_NS + 20);
                customer = c;
            }
        }
        let mut updates = Vec::new();
        if let Some(c) = customer {
            updates.push((
                self.customer_key(shard, w_local, d, c),
                UpdateOp::AddI64(rng.range_inclusive(100, 10_000) as i64),
            ));
        }
        TxnSpec {
            reads: vec![],
            updates,
            inserts: vec![],
            exec_host_ns: 400,
            exec_nic_ns: 0,
            ship: ShipMode::Host,
            local_work_ns: local_work,
            metric: false,
            rounds: Vec::new(),
            scans: vec![],
        }
    }

    /// Stock-level: read-only, home shard — district cursor plus recent
    /// order lines' distinct items' stock quantities.
    fn stock_level(&mut self, shard: u32, rng: &mut DetRng) -> TxnSpec {
        let cfg = self.cfg;
        let w_local = rng.below(u64::from(cfg.warehouses_per_node)) as u32;
        let d = rng.below(u64::from(cfg.districts)) as u32;
        let slot = self.district_slot(w_local, d);
        let last = self.next_o_id[slot].saturating_sub(1);
        // Scan the last 20 orders' lines in the local tree.
        let lo = Self::tree_key(w_local, d, last.saturating_sub(20), 0);
        let hi = Self::tree_key(w_local, d, last, 255);
        self.scratch_items.clear();
        {
            let items = &mut self.scratch_items;
            self.order_lines.range_visit(lo, hi, &mut |_, i| {
                items.push(*i);
                true
            });
        }
        let local_work = 300 + (self.scratch_items.len() as u64 + 1) * TREE_VISIT_NS;
        // Distinct items → home stock reads (chopped/sampled to 20).
        self.scratch_items.sort_unstable();
        self.scratch_items.dedup();
        self.scratch_items.truncate(20);
        if self.scratch_items.is_empty() {
            self.scratch_items.push(rng.below(u64::from(cfg.items)) as u32);
        }
        let reads: Vec<Key> = self
            .scratch_items
            .iter()
            .map(|i| self.stock_key(shard, w_local, *i))
            .collect();
        // StockScan: read the district's recent-order window through the
        // phantom-checked ordered index. The range is open at the top
        // (new orders keep arriving), so a concurrent new-order insert
        // into this district is a phantom unless validation catches it.
        let scans = if cfg.mix == TpccMix::StockScan {
            let lo = self.order_key(shard, w_local, d, last.saturating_sub(19).max(1));
            let hi = self.order_key(shard, w_local, d, MAX_O_ID);
            vec![ScanSpec::new(lo, hi).with_limit(40)]
        } else {
            vec![]
        };
        TxnSpec {
            reads,
            updates: vec![],
            inserts: vec![],
            exec_host_ns: 300,
            exec_nic_ns: 0,
            ship: ShipMode::Host,
            local_work_ns: local_work,
            metric: false,
            rounds: Vec::new(),
            scans,
        }
    }
}

impl Workload for Tpcc {
    fn next_txn(&mut self, node: usize, rng: &mut DetRng) -> TxnSpec {
        let shard = node as u32;
        match self.cfg.mix {
            TpccMix::NewOrderOnly => self.new_order(shard, rng),
            TpccMix::PaymentOnly => self.payment(shard, rng),
            TpccMix::Full => {
                // Standard mix: 45 / 43 / 4 / 4 / 4.
                match rng.below(100) {
                    0..=44 => self.new_order(shard, rng),
                    45..=87 => self.payment(shard, rng),
                    88..=91 => self.order_status(shard, rng),
                    92..=95 => self.delivery(shard, rng),
                    _ => self.stock_level(shard, rng),
                }
            }
            TpccMix::StockScan => {
                // Upweighted stock-level: 45 / 35 / 4 / 4 / 12.
                match rng.below(100) {
                    0..=44 => self.new_order(shard, rng),
                    45..=79 => self.payment(shard, rng),
                    80..=83 => self.order_status(shard, rng),
                    84..=87 => self.delivery(shard, rng),
                    _ => self.stock_level(shard, rng),
                }
            }
        }
    }

    fn value_bytes(&self) -> u32 {
        96
    }

    fn preload(&self, shard: u32) -> Vec<(Key, Value)> {
        let cfg = self.cfg;
        // Shared templates: warehouse/district 96 B (inline), stock 320 B
        // and customer 496 B (indirect — above the 256 B inline cap, as
        // the paper stores large objects out of the table).
        let wh = Value::from_bytes(&{
            let mut b = vec![0u8; 96];
            b[..8].copy_from_slice(&0i64.to_le_bytes());
            b
        });
        let district = wh.clone();
        let customer = Value::filled(496, 2);
        let stock = Value::from_bytes(&{
            let mut b = vec![0u8; 320];
            b[..8].copy_from_slice(&1_000i64.to_le_bytes());
            b
        });
        let mut out = Vec::new();
        for w in 0..cfg.warehouses_per_node {
            out.push((self.warehouse_key(shard, w), wh.clone()));
            for d in 0..cfg.districts {
                out.push((self.district_key(shard, w, d), district.clone()));
                for c in 0..cfg.customers_per_district {
                    out.push((self.customer_key(shard, w, d, c), customer.clone()));
                }
            }
            for i in 0..cfg.items {
                out.push((self.stock_key(shard, w, i), stock.clone()));
            }
            if cfg.mix == TpccMix::StockScan {
                // Seed each district's KV order window (matches the
                // generator's next_o_id start of SEED_ORDERS + 1).
                let order = Value::filled(24, 0xA7);
                for d in 0..cfg.districts {
                    for o in 1..=SEED_ORDERS {
                        out.push((self.order_key(shard, w, d, o), order.clone()));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xenic::api::shard_of;

    fn cfg(mix: TpccMix) -> TpccConfig {
        TpccConfig {
            warehouses_per_node: 4,
            nodes: 6,
            districts: 10,
            customers_per_district: 100,
            items: 1000,
            mix,
        }
    }

    #[test]
    fn new_order_shape() {
        let mut w = Tpcc::new(cfg(TpccMix::NewOrderOnly));
        let mut rng = DetRng::new(1);
        for _ in 0..500 {
            let s = w.next_txn(0, &mut rng);
            assert!(s.metric);
            assert_eq!(s.reads.len(), 2, "warehouse + customer reads");
            // district + 5..=15 stock updates.
            assert!((6..=16).contains(&s.updates.len()), "{}", s.updates.len());
            assert!(s.local_work_ns > 500, "tree work {}", s.local_work_ns);
            assert_eq!(s.ship, ShipMode::Nic);
        }
        assert!(w.order_rows() >= 500);
    }

    #[test]
    fn new_order_only_is_highly_distributed() {
        let mut w = Tpcc::new(cfg(TpccMix::NewOrderOnly));
        let mut rng = DetRng::new(2);
        let mut remote = 0usize;
        let mut total = 0usize;
        for _ in 0..1000 {
            let s = w.next_txn(0, &mut rng);
            for k in s.write_keys() {
                if shard_of(k) != 0 {
                    remote += 1;
                }
                total += 1;
            }
        }
        // Uniform-random partitions: ~5/6 of stock updates are remote.
        let frac = remote as f64 / total as f64;
        assert!(frac > 0.6, "remote fraction {frac}");
    }

    #[test]
    fn full_mix_is_mostly_local() {
        let mut w = Tpcc::new(cfg(TpccMix::Full));
        let mut rng = DetRng::new(3);
        let mut remote_txns = 0usize;
        const N: usize = 2000;
        for _ in 0..N {
            let s = w.next_txn(0, &mut rng);
            if s.all_keys().any(|k| shard_of(k) != 0) {
                remote_txns += 1;
            }
        }
        // §5.3: ~10% of new orders and 15% of payments touch a remote
        // warehouse → well under a third of transactions overall.
        let frac = remote_txns as f64 / N as f64;
        assert!(frac < 0.35, "remote txn fraction {frac}");
        assert!(frac > 0.02, "some remote access expected, got {frac}");
    }

    #[test]
    fn full_mix_fractions() {
        let mut w = Tpcc::new(cfg(TpccMix::Full));
        let mut rng = DetRng::new(4);
        let mut metric = 0usize;
        let mut read_only = 0usize;
        const N: usize = 5000;
        for _ in 0..N {
            let s = w.next_txn(0, &mut rng);
            if s.metric {
                metric += 1;
            }
            if s.is_read_only() {
                read_only += 1;
            }
        }
        let m = metric as f64 / N as f64;
        assert!((0.40..=0.50).contains(&m), "new-order fraction {m}");
        // order-status + stock-level + empty deliveries ≈ 8–12%.
        let r = read_only as f64 / N as f64;
        assert!((0.04..=0.20).contains(&r), "read-only fraction {r}");
    }

    #[test]
    fn delivery_consumes_new_orders() {
        let mut w = Tpcc::new(cfg(TpccMix::Full));
        let mut rng = DetRng::new(5);
        // Generate enough orders first.
        for _ in 0..300 {
            w.new_order(0, &mut rng);
        }
        let before = w.new_orders.len();
        for _ in 0..50 {
            w.delivery(0, &mut rng);
        }
        assert!(w.new_orders.len() < before, "deliveries must pop orders");
    }

    #[test]
    fn preload_sizes() {
        let w = Tpcc::new(cfg(TpccMix::Full));
        let data = w.preload(0);
        // 4 wh × (1 + 10 + 10×100 + 1000) = 4 + 40 + 4000 + 4000 = 8044.
        assert_eq!(data.len(), 8044);
        // Customer values are large (indirect storage path).
        assert!(data.iter().any(|(_, v)| v.len() > 256));
    }

    #[test]
    fn keys_do_not_collide_across_tables() {
        let w = Tpcc::new(cfg(TpccMix::Full));
        let data = w.preload(2);
        let mut keys: Vec<Key> = data.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n, "key collision in TPC-C packing");
    }

    #[test]
    fn lastname_index_selects_real_customers() {
        let mut w = Tpcc::new(cfg(TpccMix::Full));
        let mut rng = DetRng::new(7);
        // Every by-name selection must return a customer whose assigned
        // last name matches the index bucket it came from.
        for _ in 0..2_000 {
            let (c, work) = w.select_customer(1, 3, &mut rng);
            assert!(c < 100, "customer id {c} out of range");
            assert!(work >= TREE_VISIT_NS);
        }
        // The index holds every (w, d, customer) triple exactly once.
        assert_eq!(
            w.cust_by_name.len(),
            (w.cfg.warehouses_per_node * w.cfg.districts * w.cfg.customers_per_district)
                as usize
        );
        let _ = &mut w;
    }

    #[test]
    fn lastname_median_rule_is_deterministic() {
        let w = Tpcc::new(cfg(TpccMix::Full));
        // For a fixed name bucket, the median customer is stable.
        let lname = 5 % w.lastnames;
        let lo = Tpcc::name_key(0, 0, lname, 0);
        let hi = Tpcc::name_key(0, 0, lname, u32::MAX >> 12);
        let a = w.cust_by_name.range(lo, hi);
        let b = w.cust_by_name.range(lo, hi);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[a.len() / 2].1, b[b.len() / 2].1);
    }

    #[test]
    fn stock_scan_mix_emits_scans_and_mirror_inserts() {
        let mut w = Tpcc::new(cfg(TpccMix::StockScan));
        let mut rng = DetRng::new(8);
        let mut scans = 0usize;
        let mut inserts = 0usize;
        const N: usize = 5_000;
        for _ in 0..N {
            let s = w.next_txn(0, &mut rng);
            for sc in &s.scans {
                scans += 1;
                // One range, on the home shard, inside the ORDER region.
                assert_eq!(shard_of(sc.lo), 0);
                assert_eq!(shard_of(sc.hi), 0);
                assert_eq!(xenic::api::local_of(sc.lo) >> 48, 4);
                assert_eq!(sc.limit, 40);
            }
            assert!(s.scans.len() <= 1);
            for (k, v) in &s.inserts {
                inserts += 1;
                assert_eq!(shard_of(*k), 0, "order mirror stays on home shard");
                assert_eq!(xenic::api::local_of(*k) >> 48, 4);
                assert_eq!(v.len(), 24);
            }
        }
        // ~12% stock-level, ~45% new-order.
        let sf = scans as f64 / N as f64;
        let inf = inserts as f64 / N as f64;
        assert!((0.09..=0.15).contains(&sf), "scan fraction {sf}");
        assert!((0.40..=0.50).contains(&inf), "insert fraction {inf}");
    }

    #[test]
    fn stock_scan_inserts_land_inside_open_scan_window() {
        // The phantom interplay the variant exists for: a new-order's
        // mirrored insert for district (w, d) falls inside the range a
        // concurrent stock-level of the same district scans.
        let mut w = Tpcc::new(cfg(TpccMix::StockScan));
        let lo = w.order_key(0, 1, 3, 1);
        let hi = w.order_key(0, 1, 3, MAX_O_ID);
        let mut rng = DetRng::new(9);
        let mut found = false;
        for _ in 0..2_000 {
            let s = w.next_txn(0, &mut rng);
            for (k, _) in &s.inserts {
                if (lo..=hi).contains(k) {
                    found = true;
                }
            }
        }
        assert!(found, "no insert ever hit district (1, 3)'s order window");
    }

    #[test]
    fn stock_scan_preload_seeds_order_rows() {
        let w = Tpcc::new(cfg(TpccMix::StockScan));
        let data = w.preload(0);
        // Full preload (8044) + 4 wh × 10 d × SEED_ORDERS order rows.
        assert_eq!(data.len(), 8044 + 400);
        let mut keys: Vec<Key> = data.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n, "order rows collide with another table");
        // The seeded window starts exactly where the generator expects.
        assert!(data.iter().any(|(k, _)| *k == w.order_key(0, 0, 0, 1)));
        assert!(data
            .iter()
            .any(|(k, _)| *k == w.order_key(0, 0, 0, SEED_ORDERS)));
    }

    #[test]
    fn payment_remote_customer_rate() {
        let mut w = Tpcc::new(cfg(TpccMix::Full));
        let mut rng = DetRng::new(6);
        let mut remote = 0usize;
        let mut total = 0usize;
        for _ in 0..20_000 {
            let s = w.payment(0, &mut rng);
            total += 1;
            if s.all_keys().any(|k| shard_of(k) != 0) {
                remote += 1;
            }
        }
        let frac = remote as f64 / total as f64;
        // 15% remote warehouse, of which 5/6 land on another node → ~12.5%.
        assert!((0.08..=0.18).contains(&frac), "payment remote {frac}");
    }
}
