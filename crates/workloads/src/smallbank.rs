//! The Smallbank benchmark (paper §5.5; H-Store specification).
//!
//! "Simple transactions on a database of account balances, with small 12 B
//! objects. 15% of transactions are read-only, and the remainder involves
//! additions and subtractions of balances, with up to 3 keys per
//! transaction. 90% of transactions access 4% of keys."
//!
//! Each account has a **checking** and a **savings** row (two tables).
//! The six H-Store transaction types and their standard mix:
//!
//! | type | mix | keys | effect |
//! |---|---|---|---|
//! | Balance | 15% | 2 reads | read both balances |
//! | DepositChecking | 15% | 1 update | checking += x |
//! | TransactSavings | 15% | 1 update | savings += x |
//! | Amalgamate | 15% | 3 updates | move A's balances into B's checking |
//! | WriteCheck | 15% | 1 read + 1 update | checking −= x after a balance read |
//! | SendPayment | 25% | 2 updates | checking A → checking B |

use xenic::api::{make_key, ShipMode, TxnSpec, UpdateOp, Workload};
use xenic_sim::DetRng;
use xenic_store::{Key, Value};

/// Table tags inside the shard-local key space.
const CHECKING: u64 = 0;
const SAVINGS: u64 = 1;
/// Bits reserved for the account id below the table tag.
const TABLE_SHIFT: u32 = 48;

/// Packs a (table, account) pair into a shard-local key.
fn local_key(table: u64, account: u64) -> u64 {
    (table << TABLE_SHIFT) | account
}

/// Smallbank configuration.
#[derive(Clone, Copy, Debug)]
pub struct SmallbankConfig {
    /// Accounts per server.
    pub accounts_per_node: u64,
    /// Cluster size (shards).
    pub nodes: u32,
    /// Fraction of accounts that are hot (paper: 4%).
    pub hot_fraction: f64,
    /// Probability a transaction draws from the hot set (paper: 90%).
    pub hot_probability: f64,
}

impl SmallbankConfig {
    /// The paper's scale: 2.4 M accounts per server.
    pub fn paper(nodes: u32) -> Self {
        SmallbankConfig {
            accounts_per_node: 2_400_000,
            nodes,
            hot_fraction: 0.04,
            hot_probability: 0.9,
        }
    }

    /// Simulation scale: 1/10th of the keyspace, same skew.
    pub fn sim(nodes: u32) -> Self {
        SmallbankConfig {
            accounts_per_node: 240_000,
            ..Self::paper(nodes)
        }
    }
}

/// The Smallbank workload generator for one node.
pub struct Smallbank {
    cfg: SmallbankConfig,
}

impl Smallbank {
    /// Creates a generator.
    pub fn new(cfg: SmallbankConfig) -> Self {
        Smallbank { cfg }
    }

    /// Draws an account: hot-set biased, uniform across shards (the
    /// benchmark's accounts are partitioned; coordinators access accounts
    /// cluster-wide).
    fn pick_account(&self, rng: &mut DetRng) -> (u32, u64) {
        let shard = rng.below(u64::from(self.cfg.nodes)) as u32;
        let n = self.cfg.accounts_per_node;
        let hot = (n as f64 * self.cfg.hot_fraction).max(1.0) as u64;
        let account = if rng.chance(self.cfg.hot_probability) {
            rng.below(hot)
        } else {
            hot + rng.below(n - hot)
        };
        (shard, account)
    }

    fn checking(&self, shard: u32, account: u64) -> Key {
        make_key(shard, local_key(CHECKING, account))
    }

    fn savings(&self, shard: u32, account: u64) -> Key {
        make_key(shard, local_key(SAVINGS, account))
    }
}

impl Workload for Smallbank {
    fn next_txn(&mut self, _node: usize, rng: &mut DetRng) -> TxnSpec {
        let (s1, a1) = self.pick_account(rng);
        let (mut s2, mut a2) = self.pick_account(rng);
        if s1 == s2 && a1 == a2 {
            a2 = (a2 + 1) % self.cfg.accounts_per_node;
            s2 = s1;
        }
        let amount = rng.range_inclusive(1, 100) as i64;
        let kind = rng.below(100);
        let mut spec = match kind {
            // Balance (read-only, 15%).
            0..=14 => TxnSpec {
                reads: vec![self.checking(s1, a1), self.savings(s1, a1)],
                ..Default::default()
            },
            // DepositChecking (15%).
            15..=29 => TxnSpec {
                updates: vec![(self.checking(s1, a1), UpdateOp::AddI64(amount))],
                ..Default::default()
            },
            // TransactSavings (15%).
            30..=44 => TxnSpec {
                updates: vec![(self.savings(s1, a1), UpdateOp::AddI64(amount))],
                ..Default::default()
            },
            // Amalgamate (15%): zero A's accounts into B's checking. The
            // exact transferred amount depends on A's balances; modeled as
            // three read-modify-writes (same key/lock/abort behaviour).
            45..=59 => TxnSpec {
                updates: vec![
                    (self.checking(s1, a1), UpdateOp::AddI64(-amount)),
                    (self.savings(s1, a1), UpdateOp::AddI64(-amount)),
                    (self.checking(s2, a2), UpdateOp::AddI64(2 * amount)),
                ],
                ..Default::default()
            },
            // WriteCheck (15%).
            60..=74 => TxnSpec {
                reads: vec![self.savings(s1, a1)],
                updates: vec![(self.checking(s1, a1), UpdateOp::AddI64(-amount))],
                ..Default::default()
            },
            // SendPayment (25%).
            _ => TxnSpec {
                updates: vec![
                    (self.checking(s1, a1), UpdateOp::AddI64(-amount)),
                    (self.checking(s2, a2), UpdateOp::AddI64(amount)),
                ],
                ..Default::default()
            },
        };
        // Balance arithmetic is trivial: cheap on either processor, so
        // Smallbank ships all execution to the NIC (§5.6: "Smallbank and
        // Retwis offload all execution to the NIC").
        spec.ship = ShipMode::Nic;
        spec.exec_host_ns = 100;
        spec.exec_nic_ns = 320;
        spec
    }

    fn value_bytes(&self) -> u32 {
        12
    }

    fn preload(&self, shard: u32) -> Vec<(Key, Value)> {
        let template = Value::from_bytes(&{
            let mut b = [0u8; 12];
            b[..8].copy_from_slice(&1_000i64.to_le_bytes());
            b
        });
        let mut out = Vec::with_capacity(2 * self.cfg.accounts_per_node as usize);
        for a in 0..self.cfg.accounts_per_node {
            out.push((self.checking(shard, a), template.clone()));
            out.push((self.savings(shard, a), template.clone()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> Smallbank {
        Smallbank::new(SmallbankConfig {
            accounts_per_node: 10_000,
            nodes: 6,
            hot_fraction: 0.04,
            hot_probability: 0.9,
        })
    }

    #[test]
    fn mix_fractions_roughly_match_spec() {
        let mut w = wl();
        let mut rng = DetRng::new(1);
        let mut ro = 0;
        let mut keys = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let s = w.next_txn(0, &mut rng);
            if s.is_read_only() {
                ro += 1;
            }
            let k = s.all_keys().count();
            assert!((1..=3).contains(&k), "keys {k}");
            keys += k;
        }
        let ro_frac = ro as f64 / N as f64;
        assert!((0.12..=0.18).contains(&ro_frac), "read-only {ro_frac}");
        let mean_keys = keys as f64 / N as f64;
        assert!((1.5..=2.2).contains(&mean_keys), "mean keys {mean_keys}");
    }

    #[test]
    fn hotspot_skew() {
        let mut w = wl();
        let mut rng = DetRng::new(2);
        let hot = (10_000.0f64 * 0.04) as u64;
        let mut hot_hits = 0usize;
        let mut total = 0usize;
        for _ in 0..10_000 {
            let s = w.next_txn(0, &mut rng);
            for k in s.all_keys() {
                let account = xenic::api::local_of(k) & ((1 << TABLE_SHIFT) - 1);
                if account < hot {
                    hot_hits += 1;
                }
                total += 1;
            }
        }
        let frac = hot_hits as f64 / total as f64;
        assert!((0.85..=0.95).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn preload_covers_both_tables() {
        let w = wl();
        let data = w.preload(3);
        assert_eq!(data.len(), 20_000);
        assert!(data.iter().all(|(_, v)| v.len() == 12));
        // Checking and savings keys are distinct.
        let (k1, _) = data[0];
        let (k2, _) = data[1];
        assert_ne!(k1, k2);
    }

    #[test]
    fn all_txns_ship_to_nic() {
        let mut w = wl();
        let mut rng = DetRng::new(3);
        for _ in 0..100 {
            assert_eq!(w.next_txn(0, &mut rng).ship, ShipMode::Nic);
        }
    }

    #[test]
    fn money_deltas_sum_to_zero_for_transfers() {
        // SendPayment must conserve money: +x and -x.
        let mut w = wl();
        let mut rng = DetRng::new(4);
        for _ in 0..1000 {
            let s = w.next_txn(0, &mut rng);
            if s.updates.len() == 2 && s.reads.is_empty() {
                let sum: i64 = s
                    .updates
                    .iter()
                    .map(|(_, op)| match op {
                        UpdateOp::AddI64(d) => *d,
                        _ => panic!("non-additive"),
                    })
                    .sum();
                assert_eq!(sum, 0, "transfer must conserve");
            }
        }
    }

    #[test]
    fn paper_and_sim_scales() {
        let p = SmallbankConfig::paper(6);
        assert_eq!(p.accounts_per_node, 2_400_000);
        let s = SmallbankConfig::sim(6);
        assert_eq!(s.accounts_per_node, 240_000);
        assert_eq!(s.hot_fraction, p.hot_fraction);
    }
}
