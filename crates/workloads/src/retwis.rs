//! The Retwis benchmark (paper §5.4).
//!
//! "A Twitter-like application ... a mix of transaction types, with 50%
//! read-only transactions and 1–10 keys per transaction ... objects are
//! moderately larger (64 B ...), accessed with a Zipf distribution,
//! α = 0.5, with a higher proportion of read-only transactions ... 1
//! million keys per server."
//!
//! The transaction mix follows the Retwis adaptation used by TAPIR and
//! Meerkat (the paper's citations [41, 47]):
//!
//! | type | mix | shape |
//! |---|---|---|
//! | AddUser | 5% | 1 read, 3 writes |
//! | Follow/Unfollow | 15% | 2 reads, 2 writes |
//! | PostTweet | 30% | 3 reads, 5 writes |
//! | GetTimeline | 50% | 1–10 reads (read-only) |

use xenic::api::{make_key, ShipMode, TxnSpec, UpdateOp, Workload};
use xenic_sim::{DetRng, Zipf};
use xenic_store::{Key, Value};

/// Retwis configuration.
#[derive(Clone, Copy, Debug)]
pub struct RetwisConfig {
    /// Keys per server.
    pub keys_per_node: u64,
    /// Cluster size.
    pub nodes: u32,
    /// Zipf exponent (paper: 0.5).
    pub alpha: f64,
    /// Value size (paper: 64 B).
    pub value_bytes: u32,
}

impl RetwisConfig {
    /// The paper's scale: 1 M keys per server.
    pub fn paper(nodes: u32) -> Self {
        RetwisConfig {
            keys_per_node: 1_000_000,
            nodes,
            alpha: 0.5,
            value_bytes: 64,
        }
    }

    /// Simulation scale: 1/10th keyspace, same skew.
    pub fn sim(nodes: u32) -> Self {
        RetwisConfig {
            keys_per_node: 100_000,
            ..Self::paper(nodes)
        }
    }
}

/// The Retwis workload generator for one node.
pub struct Retwis {
    cfg: RetwisConfig,
    zipf: Zipf,
}

impl Retwis {
    /// Creates a generator (builds the Zipf sampler once).
    pub fn new(cfg: RetwisConfig) -> Self {
        Retwis {
            zipf: Zipf::new(cfg.keys_per_node as usize, cfg.alpha),
            cfg,
        }
    }

    /// Draws a key: Zipf-ranked within a uniformly chosen shard.
    fn pick(&self, rng: &mut DetRng) -> Key {
        let shard = rng.below(u64::from(self.cfg.nodes)) as u32;
        let local = self.zipf.sample(rng) as u64;
        make_key(shard, local)
    }

    /// Draws `n` distinct keys.
    fn pick_distinct(&self, rng: &mut DetRng, n: usize) -> Vec<Key> {
        let mut keys = Vec::with_capacity(n);
        let mut guard = 0;
        while keys.len() < n && guard < n * 20 {
            let k = self.pick(rng);
            if !keys.contains(&k) {
                keys.push(k);
            }
            guard += 1;
        }
        keys
    }
}

impl Workload for Retwis {
    fn next_txn(&mut self, _node: usize, rng: &mut DetRng) -> TxnSpec {
        let kind = rng.below(100);
        let mut spec = match kind {
            // AddUser: 1 read, 3 writes (profile, followers, following).
            0..=4 => {
                let keys = self.pick_distinct(rng, 4);
                TxnSpec {
                    reads: vec![keys[0]],
                    updates: keys[1..]
                        .iter()
                        .map(|k| (*k, UpdateOp::Mutate))
                        .collect(),
                    ..Default::default()
                }
            }
            // Follow: 2 reads, 2 writes.
            5..=19 => {
                let keys = self.pick_distinct(rng, 4);
                TxnSpec {
                    reads: keys[..2].to_vec(),
                    updates: keys[2..]
                        .iter()
                        .map(|k| (*k, UpdateOp::Mutate))
                        .collect(),
                    ..Default::default()
                }
            }
            // PostTweet: 3 reads, 5 writes (tweet, timelines, lists).
            20..=49 => {
                let keys = self.pick_distinct(rng, 8);
                TxnSpec {
                    reads: keys[..3].to_vec(),
                    updates: keys[3..]
                        .iter()
                        .map(|k| (*k, UpdateOp::Mutate))
                        .collect(),
                    ..Default::default()
                }
            }
            // GetTimeline: 1–10 reads.
            _ => {
                let n = rng.range_inclusive(1, 10) as usize;
                TxnSpec {
                    reads: self.pick_distinct(rng, n),
                    ..Default::default()
                }
            }
        };
        // "Minimal coordinator-side computation is involved" (§5.4):
        // everything ships to the NIC.
        spec.ship = ShipMode::Nic;
        spec.exec_host_ns = 120;
        spec.exec_nic_ns = 390;
        spec
    }

    fn value_bytes(&self) -> u32 {
        self.cfg.value_bytes
    }

    fn preload(&self, shard: u32) -> Vec<(Key, Value)> {
        let template = Value::filled(self.cfg.value_bytes as usize, 0x5A);
        (0..self.cfg.keys_per_node)
            .map(|i| (make_key(shard, i), template.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> Retwis {
        Retwis::new(RetwisConfig {
            keys_per_node: 10_000,
            nodes: 6,
            alpha: 0.5,
            value_bytes: 64,
        })
    }

    #[test]
    fn mix_is_half_read_only() {
        let mut w = wl();
        let mut rng = DetRng::new(1);
        let mut ro = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            if w.next_txn(0, &mut rng).is_read_only() {
                ro += 1;
            }
        }
        let frac = ro as f64 / N as f64;
        assert!((0.46..=0.54).contains(&frac), "read-only {frac}");
    }

    #[test]
    fn key_counts_in_range() {
        let mut w = wl();
        let mut rng = DetRng::new(2);
        for _ in 0..5_000 {
            let s = w.next_txn(0, &mut rng);
            let n = s.all_keys().count();
            assert!((1..=10).contains(&n), "keys {n}");
            // No duplicate keys within a transaction.
            let mut keys: Vec<_> = s.all_keys().collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), n);
        }
    }

    #[test]
    fn zipf_head_is_hotter() {
        let mut w = wl();
        let mut rng = DetRng::new(3);
        let mut head = 0usize;
        let mut total = 0usize;
        for _ in 0..5_000 {
            let s = w.next_txn(0, &mut rng);
            for k in s.all_keys() {
                if xenic::api::local_of(k) < 1_000 {
                    head += 1;
                }
                total += 1;
            }
        }
        // Top 10% of ranks get far more than 10% of accesses at α = 0.5
        // (≈ 31% analytically for n = 10k).
        let frac = head as f64 / total as f64;
        assert!(frac > 0.2, "head fraction {frac}");
    }

    #[test]
    fn values_are_64_bytes() {
        let w = wl();
        assert_eq!(w.value_bytes(), 64);
        let data = w.preload(0);
        assert_eq!(data.len(), 10_000);
        assert!(data.iter().all(|(_, v)| v.len() == 64));
    }

    #[test]
    fn writes_preserve_value_size() {
        let mut w = wl();
        let mut rng = DetRng::new(4);
        let old = Value::filled(64, 1);
        for _ in 0..200 {
            let s = w.next_txn(0, &mut rng);
            for (_, op) in &s.updates {
                assert_eq!(op.apply(&old).len(), 64);
            }
        }
    }
}
