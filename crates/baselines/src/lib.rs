//! RDMA-era baseline transaction systems, reimplemented on the same
//! substrate as Xenic (paper §2.2.2 and §5.1).
//!
//! The paper compares Xenic against four configurations of the DrTM+H
//! framework, all driven over Mellanox CX5 RDMA NICs:
//!
//! * [`BaselineKind::DrtmH`] — the best-case hybrid: one-sided READs for
//!   execution and validation, one-sided ATOMICs for locks, one-sided
//!   WRITEs for backup logging, two-sided RPCs for commit. A
//!   coordinator-side **location cache** makes remote lookups a single
//!   exact-object READ.
//! * [`BaselineKind::DrtmHNc`] — the same with the location cache
//!   disabled: execution reads walk the real chained-bucket hash table
//!   over RDMA, one roundtrip per bucket hop.
//! * [`BaselineKind::Fasst`] — all two-sided RPCs (Kalia et al.):
//!   no special data structure (lookups run at the RPC handler), and
//!   consolidated operations — one RPC both locks and reads per shard.
//! * [`BaselineKind::DrtmR`] — all one-sided: the coordinator CAS-locks
//!   *every* key (read and write sets), so no validation phase; commit
//!   applies values and releases locks with one-sided WRITEs.
//!
//! All four share Xenic's workload API (`xenic::api`), OCC skeleton, and
//! measurement harness, so Figure 8's five-way comparison is apples to
//! apples. Every remote operation pays the measured CX5 costs: verb
//! pipeline occupancy (§3.4's 13.5–15 Mops/s ceiling), per-verb wire
//! overhead, and — for RPCs — remote host CPU time (§3.3's 23 Mops/s).

pub mod engine;
pub mod harness;

pub use engine::{Baseline, BaselineKind, BaselineNode};
pub use harness::{run_baseline, run_baseline_recorded, run_baseline_with};
