//! Baseline run harness, mirroring `xenic::harness` so Figure 8 compares
//! five systems with identical load generation and measurement windows.

use crate::engine::{BMsg, Baseline, BaselineKind, BaselineNode};
use xenic::api::{Partitioning, Workload};
use xenic::harness::{RunOptions, RunResult};
use xenic_hw::HwParams;
use xenic_net::{Cluster, Exec, NetConfig};
use xenic_sim::{Histogram, SimTime};

/// Builds and runs a baseline cluster under the given workload.
pub fn run_baseline(
    kind: BaselineKind,
    params: HwParams,
    opts: &RunOptions,
    mk_workload: impl Fn(usize) -> Box<dyn Workload>,
) -> RunResult {
    // Baselines never use the LiquidIO path; aggregation knobs are moot.
    run_baseline_with(kind, params, NetConfig::baseline(), opts, mk_workload, |_| {})
}

/// [`run_baseline`] with an explicit network config and a setup hook run
/// on the built cluster before any transaction is seeded (e.g. to attach
/// a history recorder to every node).
pub fn run_baseline_with(
    kind: BaselineKind,
    params: HwParams,
    net: NetConfig,
    opts: &RunOptions,
    mk_workload: impl Fn(usize) -> Box<dyn Workload>,
    setup: impl FnOnce(&mut Cluster<Baseline>),
) -> RunResult {
    // RDMA systems replicate 3-way like Xenic's benchmarks.
    let part = Partitioning::new(params.nodes as u32, 3);
    let windows = opts.windows;
    let mut cluster: Cluster<Baseline> = Cluster::new(params, net, opts.seed, |node| {
        BaselineNode::new(node, kind, part, mk_workload(node), windows)
    });
    setup(&mut cluster);
    let nodes = cluster.rt.node_count();
    for node in 0..nodes {
        for slot in 0..windows {
            cluster.seed(
                SimTime::from_ns((node * windows + slot) as u64 * 97),
                node,
                Exec::Host,
                BMsg::Start { slot: slot as u32 },
            );
        }
    }
    cluster.run_until(opts.warmup);
    let mstart = cluster.rt.now();
    for st in &mut cluster.states {
        st.stats.start_measuring(mstart);
    }
    let host_busy0: u64 = (0..nodes)
        .map(|n| cluster.rt.pool_busy_ns(n, Exec::Host))
        .sum();
    let cx50: u64 = (0..nodes).map(|n| cluster.rt.cx5_tx_bytes(n)).sum();

    let horizon = SimTime::from_ns(opts.warmup.as_ns() + opts.measure.as_ns());
    cluster.run_until(horizon);
    let mend = cluster.rt.now().max(horizon);
    let secs = mend.since(mstart) as f64 / 1e9;
    let window_ns = mend.since(mstart) as f64;

    let mut latency = Histogram::new();
    let mut committed = 0u64;
    let mut aborted = 0u64;
    for st in &cluster.states {
        latency.merge(&st.stats.latency);
        committed += st.stats.committed.events();
        aborted += st.stats.aborted.get();
    }
    let host_busy: u64 = (0..nodes)
        .map(|n| cluster.rt.pool_busy_ns(n, Exec::Host))
        .sum::<u64>()
        - host_busy0;
    let cx5_bytes: u64 = (0..nodes).map(|n| cluster.rt.cx5_tx_bytes(n)).sum::<u64>() - cx50;
    let line_bytes = cluster.rt.params.net_gbps / 8.0 * window_ns;
    RunResult {
        tput_per_server: committed as f64 / secs / nodes as f64,
        p50_ns: latency.median(),
        p99_ns: latency.p99(),
        mean_ns: latency.mean(),
        committed,
        aborted,
        host_busy_cores: host_busy as f64 / window_ns / nodes as f64,
        nic_busy_cores: 0.0,
        lio_utilization: 0.0,
        cx5_utilization: cx5_bytes as f64 / (line_bytes * nodes as f64),
        ops_per_frame: 0.0,
        dma_vector_fill: 0.0,
        dma_elements_per_txn: 0.0,
        log_ship_writes: 0,
        cxl_log_writes: 0,
    }
}

/// Runs a baseline cluster with a history recorder attached to every
/// node, returning both the run result and the recorded commit history
/// for serializability checking.
pub fn run_baseline_recorded(
    kind: BaselineKind,
    params: HwParams,
    net: NetConfig,
    opts: &RunOptions,
    mk_workload: impl Fn(usize) -> Box<dyn Workload>,
) -> (RunResult, xenic_check::History) {
    let recorder = xenic_check::HistoryRecorder::default();
    let r = recorder.clone();
    let result = run_baseline_with(kind, params, net, opts, mk_workload, move |cluster| {
        for st in &mut cluster.states {
            st.set_recorder(r.clone());
        }
    });
    (result, recorder.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xenic::api::{make_key, ShipMode, TxnSpec, UpdateOp};
    use xenic_sim::DetRng;
    use xenic_store::Value;

    struct MiniWl {
        keys: u64,
        remote_frac: f64,
    }

    impl Workload for MiniWl {
        fn next_txn(&mut self, node: usize, rng: &mut DetRng) -> TxnSpec {
            let home = node as u32;
            let shard = if rng.chance(self.remote_frac) {
                let mut s = rng.below(6) as u32;
                if s == home {
                    s = (s + 1) % 6;
                }
                s
            } else {
                home
            };
            let k1 = make_key(shard, rng.below(self.keys));
            let k2 = make_key(home, rng.below(self.keys));
            TxnSpec {
                reads: vec![k2],
                updates: vec![(k1, UpdateOp::AddI64(1))],
                inserts: vec![],
                exec_host_ns: 200,
                exec_nic_ns: 650,
                ship: ShipMode::Nic,
                ..Default::default()
            }
        }

        fn value_bytes(&self) -> u32 {
            12
        }

        fn preload(&self, shard: u32) -> Vec<(u64, Value)> {
            (0..self.keys)
                .map(|i| (make_key(shard, i), Value::from_bytes(&0i64.to_le_bytes())))
                .collect()
        }
    }

    fn opts() -> RunOptions {
        RunOptions {
            windows: 4,
            warmup: SimTime::from_ms(1),
            measure: SimTime::from_ms(4),
            seed: 7,
            lanes: 1,
        }
    }

    fn mini(frac: f64) -> impl Fn(usize) -> Box<dyn Workload> {
        move |_| Box::new(MiniWl { keys: 2000, remote_frac: frac })
    }

    #[test]
    fn drtmh_commits() {
        let r = run_baseline(BaselineKind::DrtmH, HwParams::paper_testbed(), &opts(), mini(0.8));
        assert!(r.committed > 500, "committed {}", r.committed);
        assert!(r.p50_ns > 2_000 && r.p50_ns < 300_000, "p50 {}", r.p50_ns);
    }

    #[test]
    fn fasst_commits() {
        let r = run_baseline(BaselineKind::Fasst, HwParams::paper_testbed(), &opts(), mini(0.8));
        assert!(r.committed > 500, "committed {}", r.committed);
        assert!(r.host_busy_cores > 0.0);
    }

    #[test]
    fn drtmr_commits() {
        let r = run_baseline(BaselineKind::DrtmR, HwParams::paper_testbed(), &opts(), mini(0.8));
        assert!(r.committed > 500, "committed {}", r.committed);
    }

    #[test]
    fn nc_is_slower_than_cached() {
        let cached = run_baseline(
            BaselineKind::DrtmH,
            HwParams::paper_testbed(),
            &opts(),
            mini(0.9),
        );
        let nc = run_baseline(
            BaselineKind::DrtmHNc,
            HwParams::paper_testbed(),
            &opts(),
            mini(0.9),
        );
        assert!(
            nc.p50_ns >= cached.p50_ns,
            "NC p50 {} must be >= cached p50 {}",
            nc.p50_ns,
            cached.p50_ns
        );
        assert!(
            nc.tput_per_server <= cached.tput_per_server * 1.05,
            "NC tput {} vs cached {}",
            nc.tput_per_server,
            cached.tput_per_server
        );
    }

    #[test]
    fn deterministic() {
        let a = run_baseline(BaselineKind::DrtmH, HwParams::paper_testbed(), &opts(), mini(0.5));
        let b = run_baseline(BaselineKind::DrtmH, HwParams::paper_testbed(), &opts(), mini(0.5));
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.p50_ns, b.p50_ns);
    }

    #[test]
    fn no_lock_leaks_after_quiescence() {
        // Heavy contention, then verify no residual lock is ancient: run
        // and check the cluster keeps committing in the last quarter of
        // the window (a leak would freeze throughput like the Xenic
        // multihop bug this suite guards against).
        let r = run_baseline(
            BaselineKind::DrtmR,
            HwParams::paper_testbed(),
            &opts(),
            move |_| Box::new(MiniWl { keys: 60, remote_frac: 0.8 }),
        );
        assert!(r.committed > 200, "committed {} under contention", r.committed);
        assert!(r.aborted > 0, "contention must abort sometimes");
    }
}
