//! The baseline protocol engine: one OCC skeleton, four RDMA op mappings.
//!
//! Coordinator logic runs on **host** cores (these systems have no
//! SmartNIC). One-sided verbs are answered by a zero-cost responder
//! context standing in for the remote RDMA NIC's DMA engine (see
//! `xenic_net::Runtime::rdma_request`); two-sided RPCs consume remote
//! host CPU.

use std::collections::{BTreeMap, HashMap};

use xenic_hw::rdma::Verb;
use xenic_hw::HwParams;
use xenic_net::{Exec, Protocol, Runtime};
use xenic_sim::SimTime;
use xenic_store::chained::ChainedTable;
use xenic_store::{Key, TxnId, Value, Version};

use std::rc::Rc;
use xenic::api::{
    scan_fingerprint, shard_of, Partitioning, ScanSpec, TxnSpec, Workload, SCAN_FP_INIT,
};
use xenic::stats::NodeStats;
use xenic_check::HistoryRecorder;

/// One scan re-check as it rides a FaSST Validate: `(lo, hi_obs,
/// count, fp)` — the summary the Execute walk returned.
type ScanCheckTuple = (Key, Key, u32, u64);

/// Per-shard Validate payload: item version checks + scan re-checks.
type ValidatePayload = (Vec<(Key, Version)>, Vec<ScanCheckTuple>);

/// A successful walk: matched rows, observed upper bound, row count,
/// and the `(key, version)` fingerprint.
type ScanWalkOut = (Vec<(Key, Value, Version)>, Key, u32, u64);

/// Which baseline system this node runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineKind {
    /// DrTM+H: hybrid one-sided/two-sided with a location cache.
    DrtmH,
    /// DrTM+H NC: no location cache — RDMA hash-table traversal.
    DrtmHNc,
    /// FaSST: two-sided RPCs only, consolidated per-shard operations.
    Fasst,
    /// DrTM+R: one-sided only, locks **all** keys, no validation phase.
    DrtmR,
}

impl BaselineKind {
    /// True for the configurations that drive one-sided verbs.
    pub fn one_sided(&self) -> bool {
        !matches!(self, BaselineKind::Fasst)
    }

    /// True if execution reads use the coordinator location cache.
    pub fn location_cache(&self) -> bool {
        matches!(self, BaselineKind::DrtmH | BaselineKind::DrtmR)
    }

    /// True if the read set is locked as well (DrTM+R's lock-all).
    pub fn lock_all(&self) -> bool {
        matches!(self, BaselineKind::DrtmR)
    }
}

/// Messages of the baseline engine.
#[derive(Clone, Debug)]
pub enum BMsg {
    /// An app-thread slot starts a transaction.
    Start {
        /// Slot index.
        slot: u32,
    },
    /// Backoff expired; retry.
    Retry {
        /// Slot index.
        slot: u32,
    },

    // ---- One-sided responder ops (zero-cost, RDMA NIC context) ----
    /// READ of an object (location-cached: exact; NC: bucket walk with
    /// `hops_left` further roundtrips driven by the coordinator).
    ReadReq {
        /// Transaction.
        txn: TxnId,
        /// Key to read.
        key: Key,
        /// Requesting node.
        from: u32,
        /// Validation read (version check only)?
        validate: Option<Version>,
        /// Chain hop number (NC traversal; 0 = the home bucket).
        hop: usize,
    },
    /// READ response.
    ReadResp {
        /// Transaction.
        txn: TxnId,
        /// Key.
        key: Key,
        /// Value and version if found.
        result: Option<(Value, Version)>,
        /// Whether the object's lock word was set.
        locked: bool,
        /// Validation verdict (for validate reads).
        validate_ok: Option<bool>,
        /// Remaining chain hops the coordinator must still fetch (NC).
        hops_left: usize,
        /// The hop this response answers.
        hop: usize,
    },
    /// Compare-and-swap on a lock word.
    CasReq {
        /// Transaction.
        txn: TxnId,
        /// Key to lock.
        key: Key,
        /// Requesting node.
        from: u32,
        /// Version the coordinator read during Execute; the CAS fails if
        /// the object moved past it (None = lock without version guard,
        /// DrTM+R's lock-then-read).
        expected: Option<Version>,
    },
    /// CAS response.
    CasResp {
        /// Transaction.
        txn: TxnId,
        /// Key.
        key: Key,
        /// True if the lock was acquired.
        won: bool,
    },
    /// One-sided WRITE applying a committed value and clearing the lock
    /// (DrTM+R commit).
    CommitWriteReq {
        /// Transaction.
        txn: TxnId,
        /// Key, value, version.
        write: (Key, Value, Version),
        /// Requesting node.
        from: u32,
    },
    /// Commit-write ack.
    CommitWriteResp {
        /// Transaction.
        txn: TxnId,
    },
    /// One-sided WRITE of a backup log record: ack completion.
    LogWriteDone {
        /// Transaction.
        txn: TxnId,
    },
    /// One-sided WRITE clearing a lock (abort path).
    UnlockReq {
        /// Transaction.
        txn: TxnId,
        /// Key to unlock.
        key: Key,
    },

    // ---- Two-sided RPCs (remote host CPU) ----
    /// FaSST consolidated execute: lock write keys + read values.
    RpcExec {
        /// Transaction.
        txn: TxnId,
        /// Requesting node.
        from: u32,
        /// Keys to read.
        reads: Vec<Key>,
        /// Keys to lock.
        locks: Vec<Key>,
        /// Range predicates to walk on this shard's ordered mirror.
        scans: Vec<ScanSpec>,
    },
    /// Execute RPC response.
    RpcExecResp {
        /// Transaction.
        txn: TxnId,
        /// Success (all locks acquired).
        ok: bool,
        /// Values read (point reads first, then scan rows).
        values: Vec<(Key, Value, Version)>,
        /// Per-scan observations: (lo, observed hi, row count, fingerprint).
        scan_obs: Vec<(Key, Key, u32, u64)>,
    },
    /// Validation RPC.
    RpcValidate {
        /// Transaction.
        txn: TxnId,
        /// Requesting node.
        from: u32,
        /// Version checks.
        checks: Vec<(Key, Version)>,
        /// Range re-checks: (lo, observed hi, expected count, expected
        /// fingerprint) — the phantom defence for FaSST scans.
        scan_checks: Vec<(Key, Key, u32, u64)>,
    },
    /// Validation response.
    RpcValidateResp {
        /// Transaction.
        txn: TxnId,
        /// Verdict.
        ok: bool,
    },
    /// Backup-log RPC.
    RpcLog {
        /// Transaction.
        txn: TxnId,
        /// Requesting node.
        from: u32,
        /// Write set bytes (records only; content applied at commit).
        bytes: u32,
    },
    /// Log ack.
    RpcLogResp {
        /// Transaction.
        txn: TxnId,
    },
    /// Commit RPC: apply writes at the primary, clear locks. With empty
    /// writes this is an abort/unlock RPC for the listed keys.
    RpcCommit {
        /// Transaction.
        txn: TxnId,
        /// Requesting node (for the ack).
        from: u32,
        /// Writes to apply.
        writes: Vec<(Key, Value, Version)>,
        /// Extra keys to unlock (abort path).
        unlock: Vec<Key>,
        /// Whether an ack is required.
        ack: bool,
    },
    /// Commit ack.
    RpcCommitResp {
        /// Transaction.
        txn: TxnId,
    },
}

/// Coordinator phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Execution reads in flight.
    Exec,
    /// Lock CASes in flight (one-sided systems; a separate, sequential
    /// roundtrip after the reads — the restriction §5.7's baseline
    /// mimics: "separate requests to read, lock, and validate objects").
    Lock,
    /// Validation reads in flight.
    Validate,
    /// Backup log writes in flight.
    Log,
}

/// In-flight coordinator transaction.
struct Coord {
    spec: Rc<TxnSpec>,
    phase: Phase,
    pending: usize,
    ok: bool,
    values: Vec<(Key, Value, Version)>,
    writes: Vec<(Key, Value, Version)>,
    locked: Vec<Key>,
    /// Scan observations gathered during Execute: (lo, hi_obs, count, fp).
    scan_obs: Vec<(Key, Key, u32, u64)>,
}

/// Per-node baseline state.
pub struct BaselineNode {
    /// System variant.
    pub kind: BaselineKind,
    /// Placement.
    pub part: Partitioning,
    /// Own shard.
    pub shard: u32,
    /// Primary data: DrTM+H's chained-bucket table (shared structure for
    /// all four systems, per §5.1's common framework).
    pub table: ChainedTable,
    /// Lock words (host memory; CAS target).
    pub locks: HashMap<Key, TxnId>,
    /// Ordered mirror of this shard's keys → committed versions, plus
    /// version-0 sentinels for in-flight inserts. The chained hash table
    /// has no key order, so FaSST's scan RPCs walk this instead (real
    /// FaSST keeps a B-tree beside the hash index for the same reason).
    pub ordered: BTreeMap<Key, Version>,
    /// Owners of the version-0 sentinels (next-key lock information).
    pending_inserts: HashMap<Key, TxnId>,
    /// Workload generator.
    pub workload: Box<dyn Workload>,
    /// App-thread slots.
    pub slots: Vec<Option<Rc<TxnSpec>>>,
    /// First-attempt start time per slot.
    pub slot_started: Vec<SimTime>,
    /// Stats.
    pub stats: NodeStats,
    next_seq: u64,
    coord: HashMap<u64, Coord>,
    host_txns: HashMap<u64, u32>,
    /// Backup log bytes received (for utilization accounting only).
    pub log_bytes: u64,
    /// Optional commit-history recorder (serializability checking).
    recorder: Option<HistoryRecorder>,
}

impl BaselineNode {
    /// In-flight coordinator transactions (diagnostics).
    pub fn inflight(&self) -> usize {
        self.coord.len()
    }

    /// Builds a node and preloads its shard.
    pub fn new(
        node: usize,
        kind: BaselineKind,
        part: Partitioning,
        workload: Box<dyn Workload>,
        app_threads: usize,
    ) -> Self {
        let shard = node as u32;
        let data = workload.preload(shard);
        // Bucket width 8, sized for ~65% main-bucket occupancy.
        let buckets = (data.len() / 8 * 100 / 65).max(64);
        let mut table = ChainedTable::new(buckets, 8, workload.value_bytes());
        let mut ordered = BTreeMap::new();
        for (k, v) in &data {
            table.insert(*k, v.clone());
        }
        for (k, _) in &data {
            if let Some((_, ver)) = table.get(*k) {
                ordered.insert(*k, ver);
            }
        }
        BaselineNode {
            kind,
            part,
            shard,
            table,
            locks: HashMap::new(),
            ordered,
            pending_inserts: HashMap::new(),
            workload,
            slots: vec![None; app_threads],
            slot_started: vec![SimTime::ZERO; app_threads],
            stats: NodeStats::default(),
            next_seq: 1,
            coord: HashMap::new(),
            host_txns: HashMap::new(),
            log_bytes: 0,
            recorder: None,
        }
    }

    /// Attaches a history recorder; committed transactions report their
    /// read and write sets to it. Pure observer: never alters execution.
    pub fn set_recorder(&mut self, recorder: HistoryRecorder) {
        self.recorder = Some(recorder);
    }

    // ---- Ordered-mirror maintenance (FaSST scan support) ----

    /// Registers a freshly acquired lock in the mirror: if the key is an
    /// insert (absent from the table), a version-0 sentinel marks the gap
    /// so concurrent scans of the range refuse — next-key locking.
    fn mirror_lock(&mut self, k: Key, txn: TxnId) {
        if self.table.get(k).is_none() {
            self.ordered.entry(k).or_insert(0);
            self.pending_inserts.insert(k, txn);
        }
    }

    /// Clears `txn`'s insert sentinel for `k`, if any (abort/unlock).
    fn mirror_unlock(&mut self, k: Key, txn: TxnId) {
        if self.pending_inserts.get(&k) == Some(&txn) {
            self.pending_inserts.remove(&k);
            self.ordered.remove(&k);
        }
    }

    /// Publishes a committed write's version in the mirror.
    fn mirror_apply(&mut self, k: Key, ver: Version) {
        self.pending_inserts.remove(&k);
        self.ordered.insert(k, ver);
    }

    /// Walks `lo..=hi` for `txn`, up to `limit` rows. Returns the rows,
    /// observed upper bound, count and fingerprint — or `None` if the
    /// range contains another transaction's pending insert or lock.
    fn scan_walk(&self, txn: TxnId, lo: Key, hi: Key, limit: u32) -> Option<ScanWalkOut> {
        let mut rows = Vec::new();
        let mut fp = SCAN_FP_INIT;
        let mut count = 0u32;
        let mut hi_obs = hi;
        for (&k, &ver) in self.ordered.range(lo..=hi) {
            if self.pending_inserts.get(&k) == Some(&txn) {
                continue; // the transaction's own in-flight insert
            }
            if ver == 0 {
                return None; // another transaction's pending insert
            }
            if self.locks.get(&k).map(|o| *o != txn).unwrap_or(false) {
                return None; // row locked by another transaction
            }
            let (v, tver) = self.table.get(k)?;
            debug_assert_eq!(tver, ver, "ordered mirror out of sync");
            rows.push((k, v.clone(), ver));
            count += 1;
            fp = scan_fingerprint(fp, k, ver);
            if count >= limit {
                hi_obs = k;
                break;
            }
        }
        Some((rows, hi_obs, count, fp))
    }

    /// Re-walks a validated range. Returns `(still matches, keys visited)`;
    /// a count or fingerprint change means a phantom slipped in.
    fn scan_recheck(&self, txn: TxnId, lo: Key, hi_obs: Key, count: u32, fp: u64) -> (bool, u64) {
        let mut c = 0u32;
        let mut f = SCAN_FP_INIT;
        let mut visited = 0u64;
        for (&k, &ver) in self.ordered.range(lo..=hi_obs) {
            visited += 1;
            if self.pending_inserts.get(&k) == Some(&txn) {
                continue;
            }
            if ver == 0 || self.locks.get(&k).map(|o| *o != txn).unwrap_or(false) {
                return (false, visited);
            }
            c += 1;
            f = scan_fingerprint(f, k, ver);
        }
        (c == count && f == fp, visited)
    }
}

/// The baseline protocol marker.
pub struct Baseline;

impl Protocol for Baseline {
    type Msg = BMsg;
    type State = BaselineNode;

    fn cost(msg: &BMsg, exec: Exec, p: &HwParams) -> u64 {
        match exec {
            // One-sided responder context: the RDMA NIC, not a CPU.
            Exec::Nic => 0,
            Exec::Host => match msg {
                BMsg::Start { .. } | BMsg::Retry { .. } => p.host_app_handle_ns,
                // Completion-queue polling per one-sided completion.
                BMsg::ReadResp { .. }
                | BMsg::CasResp { .. }
                | BMsg::CommitWriteResp { .. }
                | BMsg::LogWriteDone { .. } => 120,
                // RPC handlers burn host CPU (§3.3).
                BMsg::RpcExec {
                    reads,
                    locks,
                    scans,
                    ..
                } => {
                    // Full store operations per key at the handler:
                    // lookup, lock word, value marshalling — for TPC-C
                    // sized objects this dwarfs the bare echo cost, which
                    // is why FaSST's host threads become the bottleneck
                    // (§5.2: "limits FaSST's throughput ... even when
                    // utilizing all host threads"). Scans additionally
                    // charge per visited row inside the handler.
                    p.host_rpc_handle_ns
                        + 900 * (reads.len() + locks.len()) as u64
                        + 600 * scans.len() as u64
                }
                BMsg::RpcValidate {
                    checks,
                    scan_checks,
                    ..
                } => {
                    p.host_rpc_handle_ns
                        + 150 * checks.len() as u64
                        + 400 * scan_checks.len() as u64
                }
                BMsg::RpcLog { bytes, .. } => p.host_rpc_handle_ns + u64::from(*bytes) / 8,
                BMsg::RpcCommit { writes, .. } => {
                    p.host_rpc_handle_ns + 300 * writes.len() as u64
                }
                BMsg::RpcExecResp { values, .. } => 150 + 20 * values.len() as u64,
                BMsg::RpcValidateResp { .. }
                | BMsg::RpcLogResp { .. }
                | BMsg::RpcCommitResp { .. } => 150,
                _ => 100,
            },
        }
    }

    fn handle(st: &mut BaselineNode, rt: &mut Runtime<BMsg>, me: usize, msg: BMsg) {
        let retry = matches!(&msg, BMsg::Retry { .. });
        match msg {
            BMsg::Start { slot } | BMsg::Retry { slot } => start_txn(st, rt, me, slot, retry),

            // ---- Responder side (zero-cost RDMA NIC context) ----
            BMsg::ReadReq {
                txn,
                key,
                from,
                validate,
                hop,
            } => {
                let locked = st
                    .locks
                    .get(&key)
                    .map(|owner| *owner != txn)
                    .unwrap_or(false);
                let (result, total_hops) = if st.kind.location_cache() || validate.is_some() {
                    (st.table.get(key).map(|(v, ver)| (v.clone(), ver)), 1)
                } else {
                    let tr = st.table.remote_lookup(key);
                    (tr.found, tr.roundtrips)
                };
                // NC traversal: each bucket hop is its own READ roundtrip;
                // the value only comes back on the final hop.
                let last = hop + 1 >= total_hops;
                let hops_left = total_hops.saturating_sub(hop + 1);
                let (result, bytes) = if last {
                    let b = result.as_ref().map(|(v, _)| v.len() as u32).unwrap_or(8);
                    (result, b)
                } else {
                    (None, st.table.slot_bytes() * st.table.bucket_width() as u32)
                };
                let validate_ok = validate
                    .map(|expected| !locked && result.as_ref().map(|(_, v)| *v) == Some(expected));
                let resp = BMsg::ReadResp {
                    txn,
                    key,
                    result,
                    locked,
                    validate_ok,
                    hops_left,
                    hop,
                };
                rt.rdma_response(from as usize, Verb::Read { bytes: bytes + 24 }, resp);
            }
            BMsg::CasReq {
                txn,
                key,
                from,
                expected,
            } => {
                let version_ok = match expected {
                    None => true,
                    Some(v) => st.table.get(key).map(|(_, ver)| ver).unwrap_or(0) == v,
                };
                let won = version_ok
                    && match st.locks.get(&key) {
                        None => {
                            st.locks.insert(key, txn);
                            true
                        }
                        Some(owner) => *owner == txn,
                    };
                rt.rdma_response(from as usize, Verb::Atomic, BMsg::CasResp { txn, key, won });
            }
            BMsg::CommitWriteReq { txn, write, from } => {
                let (k, v, ver) = write;
                st.table.insert(k, v.clone());
                st.table.update(k, v, ver);
                st.mirror_apply(k, ver);
                if st.locks.get(&k) == Some(&txn) {
                    st.locks.remove(&k);
                }
                rt.rdma_response(
                    from as usize,
                    Verb::Write { bytes: 0 },
                    BMsg::CommitWriteResp { txn },
                );
            }
            BMsg::UnlockReq { txn, key } => {
                if st.locks.get(&key) == Some(&txn) {
                    st.locks.remove(&key);
                }
                st.mirror_unlock(key, txn);
            }
            BMsg::LogWriteDone { txn } => on_log_ack(st, rt, me, txn),

            // ---- Coordinator completions ----
            BMsg::ReadResp {
                txn,
                key,
                result,
                locked,
                validate_ok,
                hops_left,
                hop,
            } => on_read_resp(st, rt, me, txn, key, result, locked, validate_ok, hops_left, hop),
            BMsg::CasResp { txn, key, won } => on_cas_resp(st, rt, me, txn, key, won),
            BMsg::CommitWriteResp { txn } => on_commit_ack(st, rt, me, txn),
            BMsg::RpcExecResp {
                txn,
                ok,
                values,
                scan_obs,
            } => on_exec_resp(st, rt, me, txn, ok, values, scan_obs),
            BMsg::RpcValidateResp { txn, ok } => on_validate_resp(st, rt, me, txn, ok),
            BMsg::RpcLogResp { txn } => on_log_ack(st, rt, me, txn),
            BMsg::RpcCommitResp { txn } => on_commit_ack(st, rt, me, txn),

            // ---- RPC handlers (remote host CPU) ----
            BMsg::RpcExec {
                txn,
                from,
                reads,
                locks,
                scans,
            } => {
                let mut ok = true;
                let mut acquired = Vec::new();
                for k in &locks {
                    match st.locks.get(k) {
                        None => {
                            st.mirror_lock(*k, txn);
                            st.locks.insert(*k, txn);
                            acquired.push(*k);
                        }
                        Some(owner) if *owner == txn => {}
                        Some(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                // Range walks run after the locks so the transaction's own
                // insert sentinels exist (and are skipped) — mirroring the
                // Xenic NIC walk's visibility rules.
                let mut scan_obs = Vec::new();
                let mut scan_rows = Vec::new();
                if ok {
                    for s in &scans {
                        match st.scan_walk(txn, s.lo, s.hi, s.limit) {
                            Some((rows, hi_obs, count, fp)) => {
                                rt.charge(150 * (rows.len() as u64 + 1));
                                scan_rows.extend(rows);
                                scan_obs.push((s.lo, hi_obs, count, fp));
                            }
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
                if !ok {
                    for k in acquired {
                        st.locks.remove(&k);
                        st.mirror_unlock(k, txn);
                    }
                    scan_obs.clear();
                    scan_rows.clear();
                }
                let mut values: Vec<(Key, Value, Version)> = if ok {
                    let mut vals: Vec<(Key, Value, Version)> = reads
                        .iter()
                        .filter_map(|k| st.table.get(*k).map(|(v, ver)| (*k, v.clone(), ver)))
                        .collect();
                    // A locked insert key that already exists surfaces its
                    // current version, so the coordinator's re-insert
                    // installs version+1 rather than regressing to 1 (a
                    // version regression breaks every later OCC check on
                    // the key).
                    for k in &locks {
                        if !reads.contains(k) {
                            if let Some((v, ver)) = st.table.get(*k) {
                                vals.push((*k, v.clone(), ver));
                            }
                        }
                    }
                    vals
                } else {
                    Vec::new()
                };
                values.extend(scan_rows);
                let payload: u32 = 16
                    + 28 * scan_obs.len() as u32
                    + values
                        .iter()
                        .map(|(_, v, _): &(Key, Value, Version)| 16 + v.len() as u32)
                        .sum::<u32>();
                rt.rdma_send(
                    from as usize,
                    BMsg::RpcExecResp {
                        txn,
                        ok,
                        values,
                        scan_obs,
                    },
                    payload,
                    true,
                );
            }
            BMsg::RpcValidate {
                txn,
                from,
                checks,
                scan_checks,
            } => {
                let mut ok = checks.iter().all(|(k, expected)| {
                    let unlocked = st
                        .locks
                        .get(k)
                        .map(|owner| *owner == txn)
                        .unwrap_or(true);
                    unlocked && st.table.get(*k).map(|(_, v)| v) == Some(*expected)
                });
                if ok {
                    for (lo, hi_obs, count, fp) in &scan_checks {
                        let (good, visited) = st.scan_recheck(txn, *lo, *hi_obs, *count, *fp);
                        rt.charge(100 * (visited + 1));
                        if !good {
                            ok = false;
                            break;
                        }
                    }
                }
                rt.rdma_send(from as usize, BMsg::RpcValidateResp { txn, ok }, 16, true);
            }
            BMsg::RpcLog { txn, from, bytes } => {
                st.log_bytes += u64::from(bytes);
                rt.rdma_send(from as usize, BMsg::RpcLogResp { txn }, 16, true);
            }
            BMsg::RpcCommit {
                txn,
                from,
                writes,
                unlock,
                ack,
            } => {
                for (k, v, ver) in writes {
                    st.table.insert(k, v.clone());
                    st.table.update(k, v, ver);
                    st.mirror_apply(k, ver);
                    if st.locks.get(&k) == Some(&txn) {
                        st.locks.remove(&k);
                    }
                }
                for k in unlock {
                    if st.locks.get(&k) == Some(&txn) {
                        st.locks.remove(&k);
                    }
                    st.mirror_unlock(k, txn);
                }
                if ack {
                    rt.rdma_send(from as usize, BMsg::RpcCommitResp { txn }, 16, true);
                }
            }
        }
    }
}

// =====================================================================
// Coordinator logic (host)
// =====================================================================

fn start_txn(st: &mut BaselineNode, rt: &mut Runtime<BMsg>, me: usize, slot: u32, retry: bool) {
    let spec = if retry {
        match st.slots[slot as usize].clone() {
            Some(s) => s,
            None => return,
        }
    } else {
        let s = Rc::new(st.workload.next_txn(me, &mut rt.rng));
        st.slots[slot as usize] = Some(Rc::clone(&s));
        st.slot_started[slot as usize] = rt.now();
        s
    };
    debug_assert!(
        spec.single_round(),
        "multi-shot transactions are a Xenic engine capability; the \
         published baselines have no equivalent (chop the transaction \
         instead, as the paper does for TPC-C)"
    );
    debug_assert!(
        spec.scans.is_empty() || matches!(st.kind, BaselineKind::Fasst),
        "range scans are implemented only for the FaSST baseline: a \
         two-sided RPC can walk the primary's ordered index, but the \
         one-sided mappings have no remote compute to serve a range"
    );
    let seq = st.next_seq;
    st.next_seq += 1;
    st.host_txns.insert(seq, slot);
    let txn = TxnId::new(me as u32, seq);
    rt.charge(spec.local_work_ns); // unshippable local work (B+trees etc.)

    let mut coord = Coord {
        spec: spec.clone(),
        phase: Phase::Exec,
        pending: 0,
        ok: true,
        values: Vec::new(),
        writes: Vec::new(),
        locked: Vec::new(),
        scan_obs: Vec::new(),
    };

    // Execute phase: reads + locks, per the system's op mapping.
    let read_keys: Vec<Key> = spec
        .reads
        .iter()
        .chain(spec.updates.iter().map(|(k, _)| k))
        .copied()
        .collect();
    let lock_keys: Vec<Key> = if st.kind.lock_all() {
        spec.all_keys().collect()
    } else {
        spec.write_keys().collect()
    };

    match st.kind {
        BaselineKind::Fasst => {
            // Consolidated per-shard RPC.
            let shards = spec.shards();
            for shard in shards {
                let reads: Vec<Key> = read_keys
                    .iter()
                    .copied()
                    .filter(|k| shard_of(*k) == shard)
                    .collect();
                let locks: Vec<Key> = lock_keys
                    .iter()
                    .copied()
                    .filter(|k| shard_of(*k) == shard)
                    .collect();
                let scans: Vec<ScanSpec> = spec
                    .scans
                    .iter()
                    .copied()
                    .filter(|s| s.shard() == shard)
                    .collect();
                let payload =
                    24 + 12 * (reads.len() + locks.len()) as u32 + 20 * scans.len() as u32;
                coord.pending += 1;
                rt.rdma_send(
                    st.part.primary(shard),
                    BMsg::RpcExec {
                        txn,
                        from: me as u32,
                        reads,
                        locks,
                        scans,
                    },
                    payload,
                    true,
                );
            }
        }
        BaselineKind::DrtmR => {
            // DrTM+R: CAS-lock *everything* first (lock-then-read — no
            // validation phase), reads follow once locks are held.
            coord.phase = Phase::Lock;
            for k in &lock_keys {
                if shard_of(*k) == st.shard {
                    rt.charge(40);
                    match st.locks.get(k) {
                        None => {
                            st.locks.insert(*k, txn);
                            coord.locked.push(*k);
                        }
                        Some(owner) if *owner == txn => {}
                        Some(_) => coord.ok = false,
                    }
                } else {
                    coord.pending += 1;
                    rt.rdma_request(
                        st.part.primary(shard_of(*k)),
                        Verb::Atomic,
                        BMsg::CasReq {
                            txn,
                            key: *k,
                            from: me as u32,
                            expected: None,
                        },
                        true,
                    );
                }
            }
        }
        _ => {
            // DrTM+H: optimistic READs first; the lock CASes are a
            // separate later roundtrip guarded by the read versions.
            coord.phase = Phase::Exec;
            for k in &read_keys {
                if shard_of(*k) == st.shard {
                    rt.charge(60);
                    if let Some((v, ver)) = st.table.get(*k) {
                        coord.values.push((*k, v.clone(), ver));
                    }
                } else {
                    coord.pending += 1;
                    let bytes = st.table.slot_bytes();
                    rt.rdma_request(
                        st.part.primary(shard_of(*k)),
                        Verb::Read { bytes },
                        BMsg::ReadReq {
                            txn,
                            key: *k,
                            from: me as u32,
                            validate: None,
                            hop: 0,
                        },
                        true,
                    );
                }
            }
        }
    }

    st.coord.insert(seq, coord);
    if st.coord[&seq].pending == 0 {
        match st.kind {
            BaselineKind::DrtmR => locks_done(st, rt, me, seq, txn),
            BaselineKind::Fasst => exec_done(st, rt, me, seq, txn),
            _ => reads_done(st, rt, me, seq, txn),
        }
    }
}

/// DrTM+H: execution reads finished — run the lock roundtrip (CAS per
/// write key, guarded by the versions just read).
fn reads_done(st: &mut BaselineNode, rt: &mut Runtime<BMsg>, me: usize, seq: u64, txn: TxnId) {
    let Some(ct) = st.coord.get_mut(&seq) else {
        return;
    };
    if !ct.ok {
        abort(st, rt, me, seq, txn);
        return;
    }
    ct.phase = Phase::Lock;
    let spec = ct.spec.clone();
    let values = ct.values.clone();
    let lock_keys: Vec<Key> = spec.write_keys().collect();
    if lock_keys.is_empty() {
        exec_done(st, rt, me, seq, txn);
        return;
    }
    let expected_of = |k: Key| -> Version {
        values
            .iter()
            .find(|(key, _, _)| *key == k)
            .map(|(_, _, v)| *v)
            .unwrap_or(0)
    };
    let mut remote = Vec::new();
    let mut ok = true;
    let mut locked_local = Vec::new();
    for k in &lock_keys {
        if shard_of(*k) == st.shard {
            rt.charge(40);
            let version_ok =
                st.table.get(*k).map(|(_, v)| v).unwrap_or(0) == expected_of(*k);
            match st.locks.get(k) {
                None if version_ok => {
                    st.locks.insert(*k, txn);
                    locked_local.push(*k);
                }
                Some(owner) if *owner == txn => {}
                _ => ok = false,
            }
        } else {
            remote.push((*k, expected_of(*k)));
        }
    }
    let ct = st.coord.get_mut(&seq).expect("coord");
    ct.locked.extend(locked_local);
    if !ok {
        ct.ok = false;
    }
    ct.pending = remote.len();
    if remote.is_empty() {
        locks_done(st, rt, me, seq, txn);
        return;
    }
    for (k, expected) in remote {
        rt.rdma_request(
            st.part.primary(shard_of(k)),
            Verb::Atomic,
            BMsg::CasReq {
                txn,
                key: k,
                from: me as u32,
                expected: Some(expected),
            },
            true,
        );
    }
}

/// Lock roundtrip finished. DrTM+H proceeds to validation; DrTM+R (which
/// locked before reading) now issues its reads.
fn locks_done(st: &mut BaselineNode, rt: &mut Runtime<BMsg>, me: usize, seq: u64, txn: TxnId) {
    let Some(ct) = st.coord.get_mut(&seq) else {
        return;
    };
    if !ct.ok {
        abort(st, rt, me, seq, txn);
        return;
    }
    if st.kind != BaselineKind::DrtmR {
        exec_done(st, rt, me, seq, txn);
        return;
    }
    // DrTM+R: reads under locks.
    ct.phase = Phase::Exec;
    let spec = ct.spec.clone();
    let read_keys: Vec<Key> = spec
        .reads
        .iter()
        .chain(spec.updates.iter().map(|(k, _)| k))
        .copied()
        .collect();
    let mut pending = 0;
    let mut local_vals = Vec::new();
    for k in &read_keys {
        if shard_of(*k) == st.shard {
            rt.charge(60);
            if let Some((v, ver)) = st.table.get(*k) {
                local_vals.push((*k, v.clone(), ver));
            }
        } else {
            pending += 1;
            let bytes = st.table.slot_bytes();
            rt.rdma_request(
                st.part.primary(shard_of(*k)),
                Verb::Read { bytes },
                BMsg::ReadReq {
                    txn,
                    key: *k,
                    from: me as u32,
                    validate: None,
                    hop: 0,
                },
                true,
            );
        }
    }
    let ct = st.coord.get_mut(&seq).expect("coord");
    ct.values.extend(local_vals);
    ct.pending = pending;
    if pending == 0 {
        exec_done(st, rt, me, seq, txn);
    }
}

#[allow(clippy::too_many_arguments)]
fn on_read_resp(
    st: &mut BaselineNode,
    rt: &mut Runtime<BMsg>,
    me: usize,
    txn: TxnId,
    key: Key,
    result: Option<(Value, Version)>,
    locked: bool,
    validate_ok: Option<bool>,
    hops_left: usize,
    hop: usize,
) {
    let seq = txn.seq;
    let Some(ct) = st.coord.get_mut(&seq) else {
        return;
    };
    if let Some(vok) = validate_ok {
        // Validation read.
        if !vok {
            ct.ok = false;
        }
        ct.pending -= 1;
        if ct.pending == 0 {
            validate_done(st, rt, me, seq, txn);
        }
        return;
    }
    if hops_left > 0 {
        // NC: the coordinator chases the chain with another READ; the
        // pending count is unchanged (this completion is replaced by the
        // next hop's).
        let bucket_bytes = st.table.slot_bytes() * st.table.bucket_width() as u32;
        rt.rdma_request(
            st.part.primary(shard_of(key)),
            Verb::Read {
                bytes: bucket_bytes,
            },
            BMsg::ReadReq {
                txn,
                key,
                from: me as u32,
                validate: None,
                hop: hop + 1,
            },
            true,
        );
        return;
    }
    if locked && st.kind != BaselineKind::DrtmR {
        // DrTM+R holds its own locks while reading; others treat a locked
        // object as a conflict.
        ct.ok = false;
    } else if let Some((v, ver)) = result {
        ct.values.push((key, v, ver));
    }
    ct.pending -= 1;
    if ct.pending == 0 {
        match st.kind {
            BaselineKind::DrtmR => exec_done(st, rt, me, seq, txn),
            BaselineKind::Fasst => exec_done(st, rt, me, seq, txn),
            _ => reads_done(st, rt, me, seq, txn),
        }
    }
}

fn on_cas_resp(
    st: &mut BaselineNode,
    rt: &mut Runtime<BMsg>,
    me: usize,
    txn: TxnId,
    key: Key,
    won: bool,
) {
    let seq = txn.seq;
    let Some(ct) = st.coord.get_mut(&seq) else {
        return;
    };
    if won {
        ct.locked.push(key);
    } else {
        ct.ok = false;
    }
    ct.pending -= 1;
    if ct.pending == 0 {
        locks_done(st, rt, me, seq, txn);
    }
}

fn on_exec_resp(
    st: &mut BaselineNode,
    rt: &mut Runtime<BMsg>,
    me: usize,
    txn: TxnId,
    ok: bool,
    values: Vec<(Key, Value, Version)>,
    scan_obs: Vec<(Key, Key, u32, u64)>,
) {
    let seq = txn.seq;
    let Some(ct) = st.coord.get_mut(&seq) else {
        return;
    };
    if !ok {
        ct.ok = false;
    } else {
        // Remote locks were acquired within the RPC; remember them for
        // abort cleanup (FaSST unlocks by commit/abort RPC).
        ct.values.extend(values);
        ct.scan_obs.extend(scan_obs);
    }
    ct.pending -= 1;
    if ct.pending == 0 {
        exec_done(st, rt, me, seq, txn);
    }
}

/// Reads and locks settled: compute writes, then validate (unless the
/// system locked everything).
fn exec_done(st: &mut BaselineNode, rt: &mut Runtime<BMsg>, me: usize, seq: u64, txn: TxnId) {
    let Some(ct) = st.coord.get_mut(&seq) else {
        return;
    };
    if !ct.ok {
        abort(st, rt, me, seq, txn);
        return;
    }
    let spec = ct.spec.clone();
    rt.charge(spec.exec_host_ns);
    let values = ct.values.clone();
    ct.writes = compute_writes(&spec, &values);

    // DrTM+R locked everything; FaSST/DrTM+H validate read-set keys.
    let checks: Vec<(Key, Version)> = if st.kind.lock_all() {
        Vec::new()
    } else {
        spec.reads
            .iter()
            .filter_map(|k| {
                values
                    .iter()
                    .find(|(key, _, _)| key == k)
                    .map(|(_, _, v)| (*k, *v))
            })
            .collect()
    };
    let remote_checks: Vec<(Key, Version)> = checks
        .iter()
        .copied()
        .filter(|(k, _)| shard_of(*k) != st.shard)
        .collect();
    let scan_obs = st.coord[&seq].scan_obs.clone();
    let remote_scans: Vec<(Key, Key, u32, u64)> = scan_obs
        .iter()
        .copied()
        .filter(|(lo, ..)| shard_of(*lo) != st.shard)
        .collect();
    // Local checks are immediate.
    let mut local_ok = checks
        .iter()
        .filter(|(k, _)| shard_of(*k) == st.shard)
        .all(|(k, expected)| {
            let unlocked = st.locks.get(k).map(|o| *o == txn).unwrap_or(true);
            unlocked && st.table.get(*k).map(|(_, v)| v) == Some(*expected)
        });
    // Home-shard range re-walks are immediate too (the mirror lives here).
    for (lo, hi_obs, count, fp) in scan_obs.iter().filter(|(lo, ..)| shard_of(*lo) == st.shard) {
        let (good, visited) = st.scan_recheck(txn, *lo, *hi_obs, *count, *fp);
        rt.charge(100 * (visited + 1));
        if !good {
            local_ok = false;
            break;
        }
    }
    let ct = st.coord.get_mut(&seq).expect("coord");
    if !local_ok {
        ct.ok = false;
        abort(st, rt, me, seq, txn);
        return;
    }
    if remote_checks.is_empty() && remote_scans.is_empty() {
        ct.phase = Phase::Validate;
        validate_done(st, rt, me, seq, txn);
        return;
    }
    ct.phase = Phase::Validate;
    match st.kind {
        BaselineKind::Fasst => {
            let mut by_shard: HashMap<u32, ValidatePayload> = HashMap::new();
            for (k, v) in remote_checks {
                by_shard.entry(shard_of(k)).or_default().0.push((k, v));
            }
            for sc in remote_scans {
                by_shard.entry(shard_of(sc.0)).or_default().1.push(sc);
            }
            let mut sends: Vec<_> = by_shard.into_iter().collect();
            sends.sort_by_key(|(s, _)| *s);
            let ct = st.coord.get_mut(&seq).expect("coord");
            ct.pending = sends.len();
            for (shard, (checks, scan_checks)) in sends {
                let payload = 24 + 16 * checks.len() as u32 + 28 * scan_checks.len() as u32;
                rt.rdma_send(
                    st.part.primary(shard),
                    BMsg::RpcValidate {
                        txn,
                        from: me as u32,
                        checks,
                        scan_checks,
                    },
                    payload,
                    true,
                );
            }
        }
        _ => {
            // One READ per read-set key (DrTM+H validation).
            let ct = st.coord.get_mut(&seq).expect("coord");
            ct.pending = remote_checks.len();
            for (k, expected) in remote_checks {
                rt.rdma_request(
                    st.part.primary(shard_of(k)),
                    Verb::Read { bytes: 16 },
                    BMsg::ReadReq {
                        txn,
                        key: k,
                        from: me as u32,
                        validate: Some(expected),
                        hop: 0,
                    },
                    true,
                );
            }
        }
    }
}

fn on_validate_resp(st: &mut BaselineNode, rt: &mut Runtime<BMsg>, me: usize, txn: TxnId, ok: bool) {
    let seq = txn.seq;
    let Some(ct) = st.coord.get_mut(&seq) else {
        return;
    };
    if !ok {
        ct.ok = false;
    }
    ct.pending -= 1;
    if ct.pending == 0 {
        validate_done(st, rt, me, seq, txn);
    }
}

/// Validation settled: log to backups, or finish read-only transactions.
fn validate_done(st: &mut BaselineNode, rt: &mut Runtime<BMsg>, me: usize, seq: u64, txn: TxnId) {
    let Some(ct) = st.coord.get_mut(&seq) else {
        return;
    };
    if !ct.ok {
        abort(st, rt, me, seq, txn);
        return;
    }
    if ct.writes.is_empty() {
        finish(st, rt, me, seq, txn, true);
        return;
    }
    ct.phase = Phase::Log;
    let mut by_shard: HashMap<u32, u32> = HashMap::new();
    for (k, v, _) in &ct.writes {
        *by_shard.entry(shard_of(*k)).or_default() += 24 + v.len() as u32;
    }
    let mut sends = Vec::new();
    for (shard, bytes) in by_shard {
        for b in st.part.backups(shard) {
            sends.push((b, bytes));
        }
    }
    sends.sort();
    let ct = st.coord.get_mut(&seq).expect("coord");
    ct.pending = sends.len();
    if sends.is_empty() {
        finish(st, rt, me, seq, txn, true);
        return;
    }
    let two_sided_log = matches!(st.kind, BaselineKind::Fasst);
    for (backup, bytes) in sends {
        if two_sided_log {
            rt.rdma_send(
                backup,
                BMsg::RpcLog {
                    txn,
                    from: me as u32,
                    bytes,
                },
                bytes + 24,
                true,
            );
        } else {
            // One-sided WRITE of the log record (DrTM+H, DrTM+R, like
            // FaRM): no remote CPU, ack on completion.
            rt.rdma_one_sided(
                backup,
                Verb::Write { bytes: bytes + 24 },
                BMsg::LogWriteDone { txn },
                true,
            );
        }
    }
}

fn on_log_ack(st: &mut BaselineNode, rt: &mut Runtime<BMsg>, me: usize, txn: TxnId) {
    let seq = txn.seq;
    // A backup node receiving RpcLog calls this on itself via the `from`
    // routing; coordinator acks land here too. Only the coordinator holds
    // the coord entry.
    if txn.node != me as u32 {
        return;
    }
    let Some(ct) = st.coord.get_mut(&seq) else {
        return;
    };
    if ct.phase != Phase::Log {
        return;
    }
    ct.pending -= 1;
    if ct.pending == 0 {
        finish(st, rt, me, seq, txn, true);
    }
}

/// Commit point: report the outcome, then push the Commit phase.
fn finish(
    st: &mut BaselineNode,
    rt: &mut Runtime<BMsg>,
    me: usize,
    seq: u64,
    txn: TxnId,
    committed: bool,
) {
    let Some(ct) = st.coord.remove(&seq) else {
        return;
    };
    let Some(slot) = st.host_txns.remove(&seq) else {
        return;
    };
    if committed {
        if let Some(r) = &st.recorder {
            r.note_reads(txn, ct.values.iter().map(|(k, _, ver)| (*k, *ver)));
            r.note_writes(txn, ct.writes.iter().map(|(k, _, ver)| (*k, *ver)));
            r.note_scans(txn, ct.scan_obs.iter().map(|(lo, hi, _, _)| (*lo, *hi)));
            r.commit(txn);
        }
        let started = st.slot_started[slot as usize];
        let metric = ct.spec.metric;
        st.stats.record_commit(metric, started, rt.now());
        st.slots[slot as usize] = None;
        rt.send_local(Exec::Host, BMsg::Start { slot }, 50);
        // Commit phase (post-ack): apply writes and release locks.
        // lock_all systems must also release read-set locks even when
        // the write set is empty.
        if !ct.writes.is_empty() || st.kind.lock_all() {
            push_commit(st, rt, me, txn, &ct);
        }
    } else {
        st.stats.record_abort();
        let backoff = rt.rng.range_inclusive(2_000, 12_000);
        rt.send_local(Exec::Host, BMsg::Retry { slot }, backoff);
    }
}

fn push_commit(st: &mut BaselineNode, rt: &mut Runtime<BMsg>, me: usize, txn: TxnId, ct: &Coord) {
    let mut by_shard: HashMap<u32, Vec<(Key, Value, Version)>> = HashMap::new();
    for w in &ct.writes {
        by_shard.entry(shard_of(w.0)).or_default().push(w.clone());
    }
    let mut shards: Vec<_> = by_shard.into_iter().collect();
    shards.sort_by_key(|(s, _)| *s);
    for (shard, writes) in shards {
        if shard == st.shard {
            // Local apply.
            rt.charge(100 * writes.len() as u64);
            for (k, v, ver) in writes {
                st.table.insert(k, v.clone());
                st.table.update(k, v, ver);
                st.mirror_apply(k, ver);
                if st.locks.get(&k) == Some(&txn) {
                    st.locks.remove(&k);
                }
            }
            continue;
        }
        match st.kind {
            BaselineKind::DrtmR => {
                // One-sided value WRITE per key; the write also clears the
                // lock word (value+lock in one cacheline-adjacent write).
                for w in writes {
                    rt.rdma_request(
                        st.part.primary(shard),
                        Verb::Write {
                            bytes: w.1.len() as u32 + 24,
                        },
                        BMsg::CommitWriteReq {
                            txn,
                            write: w,
                            from: me as u32,
                        },
                        true,
                    );
                }
            }
            _ => {
                // DrTM+H and FaSST commit via RPC.
                let payload: u32 = 24 + writes
                    .iter()
                    .map(|(_, v, _)| 16 + v.len() as u32)
                    .sum::<u32>();
                rt.rdma_send(
                    st.part.primary(shard),
                    BMsg::RpcCommit {
                        txn,
                        from: me as u32,
                        writes,
                        unlock: Vec::new(),
                        ack: false,
                    },
                    payload,
                    true,
                );
            }
        }
    }
    // DrTM+R additionally unlocks the read-set keys it CAS-locked.
    if st.kind.lock_all() {
        for k in &ct.locked {
            if shard_of(*k) != st.shard && !ct.writes.iter().any(|(wk, _, _)| wk == k) {
                rt.rdma_request(
                    st.part.primary(shard_of(*k)),
                    Verb::Write { bytes: 8 },
                    BMsg::UnlockReq { txn, key: *k },
                    true,
                );
            } else if shard_of(*k) == st.shard && !ct.writes.iter().any(|(wk, _, _)| wk == k)
                && st.locks.get(k) == Some(&txn) {
                    st.locks.remove(k);
                }
        }
    }
}

fn on_commit_ack(_st: &mut BaselineNode, _rt: &mut Runtime<BMsg>, _me: usize, _txn: TxnId) {
    // Commit acknowledgements carry no further obligation (outcome was
    // reported at the log point, matching the Xenic engine).
}

/// Abort: unlock everything acquired, report, retry.
fn abort(st: &mut BaselineNode, rt: &mut Runtime<BMsg>, me: usize, seq: u64, txn: TxnId) {
    let Some(ct) = st.coord.get(&seq) else {
        return;
    };
    let locked = ct.locked.clone();
    let uses_rpc = matches!(st.kind, BaselineKind::Fasst);
    for k in locked {
        if shard_of(k) == st.shard {
            if st.locks.get(&k) == Some(&txn) {
                st.locks.remove(&k);
            }
            st.mirror_unlock(k, txn);
        } else if uses_rpc {
            rt.rdma_send(
                st.part.primary(shard_of(k)),
                BMsg::RpcCommit {
                    txn,
                    from: me as u32,
                    writes: Vec::new(),
                    unlock: vec![k],
                    ack: false,
                },
                24,
                true,
            );
        } else {
            rt.rdma_request(
                st.part.primary(shard_of(k)),
                Verb::Write { bytes: 8 },
                BMsg::UnlockReq { txn, key: k },
                true,
            );
        }
    }
    // FaSST also has to unlock keys locked inside remote RpcExec handlers;
    // those were acquired remotely and the coordinator may not have an
    // explicit list — send unlock RPCs to every write shard.
    if uses_rpc {
        // Home-shard keys were locked by the self-RPC handler: release
        // them directly (leaking them wedges every later transaction on
        // the same key — e.g. a TPC-C district).
        let home_keys: Vec<Key> = st.coord[&seq]
            .spec
            .write_keys()
            .filter(|k| shard_of(*k) == st.shard)
            .collect();
        for k in home_keys {
            if st.locks.get(&k) == Some(&txn) {
                st.locks.remove(&k);
            }
            st.mirror_unlock(k, txn);
        }
        let ct = st.coord.get(&seq).expect("coord");
        let mut shards: Vec<u32> = ct
            .spec
            .write_keys()
            .map(shard_of)
            .filter(|s| *s != st.shard)
            .collect();
        shards.sort_unstable();
        shards.dedup();
        for shard in shards {
            let keys: Vec<Key> = st.coord[&seq]
                .spec
                .write_keys()
                .filter(|k| shard_of(*k) == shard)
                .collect();
            rt.rdma_send(
                st.part.primary(shard),
                BMsg::RpcCommit {
                    txn,
                    from: me as u32,
                    writes: Vec::new(),
                    unlock: keys,
                    ack: false,
                },
                24,
                true,
            );
        }
    }
    finish(st, rt, me, seq, txn, false);
}

/// Shared write computation (same semantics as the Xenic engine).
fn compute_writes(spec: &TxnSpec, values: &[(Key, Value, Version)]) -> Vec<(Key, Value, Version)> {
    let lookup = |k: Key| -> (Value, Version) {
        values
            .iter()
            .find(|(key, _, _)| *key == k)
            .map(|(_, v, ver)| (v.clone(), *ver))
            .unwrap_or_else(|| (Value::filled(8, 0), 0))
    };
    let mut out = Vec::with_capacity(spec.updates.len() + spec.inserts.len());
    for (k, op) in &spec.updates {
        let (old, ver) = lookup(*k);
        out.push((*k, op.apply(&old), ver + 1));
    }
    for (k, v) in &spec.inserts {
        let (_, ver) = lookup(*k);
        out.push((*k, v.clone(), ver + 1));
    }
    out
}
