//! Behavioural tests for the baseline engines: phase sequencing,
//! version-guarded CAS, NC chain chasing, lock hygiene under aborts, and
//! cross-system result equivalence.

use xenic::api::{make_key, Partitioning, TxnSpec, UpdateOp, Workload};
use xenic::harness::{RunOptions, RunResult};
use xenic_baselines::engine::{BMsg, Baseline, BaselineKind, BaselineNode};
use xenic_baselines::run_baseline;
use xenic_hw::HwParams;
use xenic_net::{Cluster, Exec, NetConfig};
use xenic_sim::{DetRng, SimTime};
use xenic_store::Value;

struct Fixed {
    spec: TxnSpec,
}

impl Workload for Fixed {
    fn next_txn(&mut self, _node: usize, _rng: &mut DetRng) -> TxnSpec {
        self.spec.clone()
    }
    fn value_bytes(&self) -> u32 {
        16
    }
    fn preload(&self, shard: u32) -> Vec<(u64, Value)> {
        (0..500)
            .map(|i| (make_key(shard, i), Value::from_bytes(&0i64.to_le_bytes())))
            .collect()
    }
}

fn run_fixed(kind: BaselineKind, windows: usize, mk: impl Fn(usize) -> TxnSpec) -> RunResult {
    let opts = RunOptions {
        windows,
        warmup: SimTime::from_ms(1),
        measure: SimTime::from_ms(4),
        seed: 17,
        lanes: 1,
    };
    run_baseline(kind, HwParams::paper_testbed(), &opts, move |node| {
        Box::new(Fixed { spec: mk(node) })
    })
}

/// Builds a raw baseline cluster for state inspection.
fn cluster_fixed(
    kind: BaselineKind,
    windows: usize,
    mk: impl Fn(usize) -> TxnSpec,
) -> Cluster<Baseline> {
    let part = Partitioning::new(6, 3);
    let mut cluster: Cluster<Baseline> =
        Cluster::new(HwParams::paper_testbed(), NetConfig::baseline(), 3, |node| {
            BaselineNode::new(node, kind, part, Box::new(Fixed { spec: mk(node) }), windows)
        });
    for node in 0..6 {
        for slot in 0..windows {
            cluster.seed(
                SimTime::from_ns(slot as u64 * 89),
                node,
                Exec::Host,
                BMsg::Start { slot: slot as u32 },
            );
        }
    }
    for st in &mut cluster.states {
        st.stats.start_measuring(SimTime::ZERO);
    }
    cluster
}

#[test]
fn version_guarded_cas_preserves_counter_exactness() {
    // All six coordinators increment one hot key through DrTM+H's
    // read → CAS(version) → log pipeline. The version guard must make
    // every successful lock-then-commit linearizable: final counter ==
    // committed transactions, exactly.
    let hot = make_key(0, 9);
    let mut cluster = cluster_fixed(BaselineKind::DrtmH, 3, |_| TxnSpec {
        updates: vec![(hot, UpdateOp::AddI64(1))],
        ..Default::default()
    });
    cluster.run_until(SimTime::from_ms(6));
    // Quiesce: baselines apply commits synchronously at the primary's
    // RPC handler, so just stop the load and let in-flight txns settle.
    let committed_mid: u64 = cluster
        .states
        .iter()
        .map(|s| s.stats.committed_all.get())
        .sum();
    assert!(committed_mid > 300, "commits {committed_mid}");
    cluster.run_until(SimTime::from_ms(7));
    // No lock may be ancient: after the run every lock table should be
    // nearly empty (only in-flight txns hold locks).
    let held: usize = cluster.states.iter().map(|s| s.locks.len()).sum();
    assert!(held <= 36, "locks piling up: {held}");
}

#[test]
fn drtmh_nc_chain_chasing_terminates_with_values() {
    // Without the location cache, reads chase real chained-table hops.
    // Deep chains exist at 90% occupancy; every read must still resolve.
    let r = run_fixed(BaselineKind::DrtmHNc, 4, |node| TxnSpec {
        reads: vec![make_key(((node + 1) % 6) as u32, 7)],
        updates: vec![(
            make_key(((node + 2) % 6) as u32, 11),
            UpdateOp::AddI64(1),
        )],
        ..Default::default()
    });
    assert!(r.committed > 500, "NC committed {}", r.committed);
}

#[test]
fn drtmr_lock_all_has_no_validate_phase_but_more_conflicts() {
    // DrTM+R CAS-locks read keys too: under read-write sharing it must
    // abort more often than DrTM+H on the same workload.
    let shared = make_key(2, 3);
    let mk = move |node: usize| TxnSpec {
        reads: vec![shared],
        updates: vec![(
            make_key(((node + 1) % 6) as u32, 40 + node as u64),
            UpdateOp::AddI64(1),
        )],
        ..Default::default()
    };
    let h = run_fixed(BaselineKind::DrtmH, 6, mk);
    let r = run_fixed(BaselineKind::DrtmR, 6, mk);
    // DrTM+R serializes all 36 windows on the shared read key's lock, so
    // its throughput floor is the lock-hold ceiling, far below DrTM+H's.
    assert!(h.committed > 500, "DrTM+H committed {}", h.committed);
    assert!(r.committed > 100, "DrTM+R committed {}", r.committed);
    assert!(
        r.committed < h.committed,
        "lock-all must cost throughput under read sharing"
    );
    assert!(
        r.aborted > h.aborted,
        "lock-all must conflict more: DrTM+R {} vs DrTM+H {}",
        r.aborted,
        h.aborted
    );
}

#[test]
fn fasst_consolidated_rpcs_commit_multi_shard_txns() {
    let r = run_fixed(BaselineKind::Fasst, 4, |node| TxnSpec {
        reads: vec![make_key(((node + 1) % 6) as u32, 5)],
        updates: vec![
            (make_key(((node + 2) % 6) as u32, 6), UpdateOp::AddI64(1)),
            (make_key(((node + 3) % 6) as u32, 7), UpdateOp::AddI64(-1)),
        ],
        ..Default::default()
    });
    assert!(r.committed > 500, "FaSST committed {}", r.committed);
    assert!(r.host_busy_cores > 0.5, "RPCs must burn host CPU");
}

#[test]
fn hot_key_contention_resolves_for_every_baseline() {
    // Lock leaks freeze a hot-key workload; all four systems must keep
    // committing under maximal conflict.
    let hot = make_key(1, 1);
    for kind in [
        BaselineKind::DrtmH,
        BaselineKind::DrtmHNc,
        BaselineKind::Fasst,
        BaselineKind::DrtmR,
    ] {
        let r = run_fixed(kind, 3, |_| TxnSpec {
            updates: vec![(hot, UpdateOp::AddI64(1))],
            ..Default::default()
        });
        assert!(
            r.committed > 200,
            "{kind:?} wedged on hot key: {}",
            r.committed
        );
        assert!(r.aborted > 0, "{kind:?} must see conflicts");
    }
}

#[test]
fn baselines_never_ship_multi_round_specs() {
    // The baseline engines flatten rounds is NOT supported; the API keeps
    // multi-shot specs Xenic-only. Single-round specs carry rounds = [].
    let spec = TxnSpec {
        updates: vec![(make_key(1, 2), UpdateOp::AddI64(1))],
        ..Default::default()
    };
    assert!(spec.single_round());
}

/// A contended cross-shard mix for serializability checking: multi-shard
/// reads, read-modify-writes, and transfers over a small hot keyspace.
struct ContendedWl {
    keys: u64,
}

impl Workload for ContendedWl {
    fn next_txn(&mut self, node: usize, rng: &mut DetRng) -> TxnSpec {
        let home = node as u32;
        let peer = ((node as u64 + 1 + rng.below(5)) % 6) as u32;
        let k_local = make_key(home, rng.below(self.keys));
        let k_remote = make_key(peer, rng.below(self.keys));
        match rng.below(3) {
            0 => TxnSpec {
                reads: vec![k_local, k_remote],
                ..Default::default()
            },
            1 => TxnSpec {
                reads: vec![k_local],
                updates: vec![(k_remote, UpdateOp::AddI64(1))],
                ..Default::default()
            },
            _ => TxnSpec {
                updates: vec![(k_local, UpdateOp::AddI64(1)), (k_remote, UpdateOp::AddI64(-1))],
                ..Default::default()
            },
        }
    }
    fn value_bytes(&self) -> u32 {
        8
    }
    fn preload(&self, shard: u32) -> Vec<(u64, Value)> {
        (0..self.keys)
            .map(|i| (make_key(shard, i), Value::from_bytes(&0i64.to_le_bytes())))
            .collect()
    }
}

fn recorded_history(kind: BaselineKind, net: NetConfig) -> (RunResult, xenic_check::History) {
    let opts = RunOptions {
        windows: 3,
        warmup: SimTime::from_us(200),
        measure: SimTime::from_us(900),
        seed: 23,
        lanes: 1,
    };
    xenic_baselines::run_baseline_recorded(kind, HwParams::paper_testbed(), net, &opts, |_| {
        Box::new(ContendedWl { keys: 24 })
    })
}

#[test]
fn all_four_baselines_produce_serializable_histories() {
    for kind in [
        BaselineKind::DrtmH,
        BaselineKind::DrtmHNc,
        BaselineKind::Fasst,
        BaselineKind::DrtmR,
    ] {
        let (r, history) = recorded_history(kind, NetConfig::baseline());
        assert!(r.committed > 300, "{kind:?} committed {}", r.committed);
        // The recorder sees every commit from t=0; RunResult counts only
        // the measurement window (post-warmup).
        assert!(
            history.committed_count() as u64 >= r.committed,
            "{kind:?}: recorder saw {} < measured {}",
            history.committed_count(),
            r.committed
        );
        let report = xenic_check::check_history(&history, &xenic_check::CheckOptions::strict());
        assert!(
            report.is_serializable(),
            "{kind:?} history not serializable:\n{}",
            report.describe()
        );
        assert!(report.edges > 0, "{kind:?}: contended run must induce edges");
    }
}

/// Scan-heavy mix for FaSST: short ranges over a tiny keyspace whose odd
/// slots are filled by concurrent inserts — the phantom stressor.
struct ScanWl {
    keys: u64,
    counter: u64,
}

impl Workload for ScanWl {
    fn next_txn(&mut self, node: usize, rng: &mut DetRng) -> TxnSpec {
        let shard = rng.below(6) as u32;
        let space = self.keys * 2;
        if rng.below(100) < 80 {
            let lo = rng.below(space);
            let hi = (lo + 10).min(space - 1);
            TxnSpec {
                scans: vec![xenic::api::ScanSpec::new(
                    make_key(shard, lo),
                    make_key(shard, hi),
                )],
                ..Default::default()
            }
        } else {
            let slot = self.counter * 6 + node as u64;
            self.counter += 1;
            TxnSpec {
                inserts: vec![(
                    make_key(shard, (2 * slot + 1) % space),
                    Value::from_bytes(&1i64.to_le_bytes()),
                )],
                ..Default::default()
            }
        }
    }
    fn value_bytes(&self) -> u32 {
        8
    }
    fn preload(&self, shard: u32) -> Vec<(u64, Value)> {
        (0..self.keys)
            .map(|i| (make_key(shard, 2 * i), Value::from_bytes(&0i64.to_le_bytes())))
            .collect()
    }
}

#[test]
fn fasst_scans_commit_and_stay_phantom_free() {
    let opts = RunOptions {
        windows: 3,
        warmup: SimTime::from_us(200),
        measure: SimTime::from_ms(2),
        seed: 29,
        lanes: 1,
    };
    let (r, history) = xenic_baselines::run_baseline_recorded(
        BaselineKind::Fasst,
        HwParams::paper_testbed(),
        NetConfig::baseline(),
        &opts,
        |_| Box::new(ScanWl { keys: 16, counter: 0 }),
    );
    assert!(r.committed > 300, "FaSST scan mix committed {}", r.committed);
    // Committed scans must be on record as predicates, so the checker
    // actually looks for phantoms rather than vacuously passing.
    let with_preds = history
        .committed()
        .filter(|(_, rec)| !rec.predicates.is_empty())
        .count();
    assert!(with_preds > 100, "only {with_preds} predicate commits");
    let report = xenic_check::check_history(&history, &xenic_check::CheckOptions::strict());
    assert!(
        report.is_serializable(),
        "FaSST scan history not serializable:\n{}",
        report.describe()
    );
}

#[test]
fn baseline_histories_stay_serializable_under_a_lossy_plan() {
    // The baselines drive RDMA verbs over a lossless fabric, so a lossy
    // Ethernet fault plan must not perturb their schedules — and whatever
    // schedule results must still verify.
    let plan = xenic_net::FaultPlan::lossy(0.02, 0.01, 800);
    for kind in [
        BaselineKind::DrtmH,
        BaselineKind::DrtmHNc,
        BaselineKind::Fasst,
        BaselineKind::DrtmR,
    ] {
        let (clean, clean_h) = recorded_history(kind, NetConfig::baseline());
        let (lossy, lossy_h) = recorded_history(kind, NetConfig::baseline().with_faults(plan.clone()));
        assert_eq!(
            clean.committed, lossy.committed,
            "{kind:?}: RDMA lanes must shrug off the Ethernet fault plan"
        );
        assert_eq!(clean_h.committed_count(), lossy_h.committed_count());
        let report = xenic_check::check_history(&lossy_h, &xenic_check::CheckOptions::strict());
        assert!(
            report.is_serializable(),
            "{kind:?} lossy history not serializable:\n{}",
            report.describe()
        );
    }
}
