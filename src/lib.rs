//! Workspace root crate: re-exports the Xenic reproduction crates so the
//! examples and integration tests can use one import root.

pub use xenic;
pub use xenic_baselines as baselines;
pub use xenic_hw as hw;
pub use xenic_net as net;
pub use xenic_sim as sim;
pub use xenic_store as store;
pub use xenic_workloads as workloads;
