#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must keep green.
#
#   ./verify.sh          full gate (build, tests, clippy -D warnings)
#   ./verify.sh --quick  skip clippy (fast local loop)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --release -q --test conformance"
cargo test --release -q --test conformance

echo "==> perf_report --quick (alloc-count, budget-gated)"
# The counting allocator's overhead is one relaxed atomic per allocation
# — noise — so the gated run also refreshes BENCH_simperf.json with both
# throughput and allocs/event. Budgets are generous (~2× the measured
# steady state) so this catches hot-path re-fattening, not jitter.
cargo run --release -q -p xenic-bench --features alloc-count --bin perf_report -- \
    --quick --alloc-budget retwis_fig8=1200,chaos_replay=1300,tpcc_mix=4500

echo "==> serial_fuzz --quick"
cargo run --release -q -p xenic-bench --bin serial_fuzz -- --quick

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> cargo clippy --all-targets -- -D warnings"
    cargo clippy --all-targets -- -D warnings
fi

echo "verify: OK"
