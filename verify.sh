#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must keep green.
#
#   ./verify.sh          full gate (build, tests, clippy -D warnings)
#   ./verify.sh --quick  skip clippy (fast local loop)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --release -q --test conformance"
cargo test --release -q --test conformance

echo "==> cargo test --release -q -p xenic-store --test btree_differential"
# The B-tree differential suite (vs std BTreeMap) in release mode: the
# randomized schedules are 100k steps each, so the optimized build keeps
# this fast while still exercising split/merge/borrow at both orders.
cargo test --release -q -p xenic-store --test btree_differential

echo "==> perf_report --quick (alloc-count, budget-gated)"
# The counting allocator's overhead is one relaxed atomic per allocation
# — noise — so the gated run also refreshes BENCH_simperf.json with both
# throughput and allocs/event. Budgets are generous (~2× the measured
# steady state) so this catches hot-path re-fattening, not jitter.
cargo run --release -q -p xenic-bench --features alloc-count --bin perf_report -- \
    --quick --alloc-budget retwis_fig8=1200,chaos_replay=1300,tpcc_mix=4500,ycsbe_mix=2000,tpcc_stock=6500

echo "==> serial_fuzz --quick"
# Includes all four checker self-tests: xenic-weakened (skipped version
# re-checks), xenic-weak-predicates (skipped range re-walks),
# xenic-weak-quorum (Raft-style backend commits before its majority),
# and xenic-weak-cxl (CXL coherence fence and pool re-check skipped)
# must each be rejected with a shrunk, bit-for-bit-replayable witness.
cargo run --release -q -p xenic-bench --bin serial_fuzz -- --quick

echo "==> per-backend replication chaos tests"
# Conservation under loss+dup, convergence across a healed partition,
# and crash/restart chained into shard recovery — for each pluggable
# replication backend (log shipping, Raft-style, Hermes-style).
cargo test --release -q --test chaos all_backends_

echo "==> lane-count invariance (release)"
# The multi-lane epoch-barrier scheduler (DESIGN.md §16) must reproduce
# the serial scheduler bit for bit: workload × backend × fault-plan
# matrix at lanes {1,2,4}, plus the pinned 64-node smoke run.
cargo test --release -q --test lanes

echo "==> lane_scaling --quick"
# Same contract on a 16-node cluster via the scaling report binary: the
# run exits non-zero if any lane count's fingerprint (committed/aborted/
# digest/events) diverges from serial. Wall-clock speedup is reported
# but not gated here (CI cores vary); on a multicore host the bar is
# `--min-speedup 1.5`.
cargo run --release -q -p xenic-bench --bin lane_scaling -- --quick

echo "==> repl_sweep --quick (DSG-gated)"
# Availability/throughput/latency per backend at two fault rates; every
# row's history is verified serializable, and the binary exits non-zero
# on any violation.
cargo run --release -q -p xenic-bench --bin repl_sweep -- --quick

echo "==> substrate conformance suite (release)"
# The substrate/placement contract (DESIGN.md §17): OnPathLiquidIO
# byte-identical to the pre-refactor pins (p50/p99 included), pinned
# BlueField/CXL fingerprints, the off-path cliff ordering, the CXL
# zero-log-shipping trade, and placement differentials (same outcomes,
# different latency) under chaos for every replication backend.
cargo test --release -q --test substrate

echo "==> substrate_sweep --quick (DSG- and trend-gated)"
# Substrate × placement × workload; every row verified serializable and
# the off-path cliff + CXL log trade enforced as hard orderings.
cargo run --release -q -p xenic-bench --bin substrate_sweep -- --quick

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> cargo clippy --all-targets -- -D warnings"
    cargo clippy --all-targets -- -D warnings
fi

echo "verify: OK"
