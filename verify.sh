#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must keep green.
#
#   ./verify.sh          full gate (build, tests, clippy -D warnings)
#   ./verify.sh --quick  skip clippy (fast local loop)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --release -q --test conformance"
cargo test --release -q --test conformance

echo "==> perf_report --quick"
cargo run --release -q -p xenic-bench --bin perf_report -- --quick

echo "==> serial_fuzz --quick"
cargo run --release -q -p xenic-bench --bin serial_fuzz -- --quick

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> cargo clippy --all-targets -- -D warnings"
    cargo clippy --all-targets -- -D warnings
fi

echo "verify: OK"
