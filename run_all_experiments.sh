#!/bin/sh
# Regenerates every paper table and figure into results/.
# Full runtime: ~30-60 minutes on one core (the simulator is
# single-threaded and deterministic). Add --fast to fig8_sweep for a
# quick pass.
set -e
cargo build --release -p xenic-bench --bins
mkdir -p results
run() { echo "== $1"; ./target/release/"$1" ${2:-} | tee "results/$1.txt"; }
run fig2_latency
run fig3_batching
run fig4_dma
run table1_cores
run table2_lookup
echo "== fig8_sweep all"; ./target/release/fig8_sweep all | tee results/fig8_all.txt
run table3_threads
run fig9_ablation
run drtmr_comparison
run cache_pressure
run phase_breakdown
echo "All experiments complete; outputs in results/."
