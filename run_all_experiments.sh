#!/bin/sh
# Regenerates every paper table and figure into results/.
# Each simulation is single-threaded and deterministic, but the sweep
# harnesses (fig8_sweep, fig9_ablation, cache_pressure, fault_sweep) run
# independent points on worker threads: JOBS=N (default: all cores)
# controls the fan-out, and output is byte-identical regardless of N.
# Add --fast to fig8_sweep for a quick pass.
set -e
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 1)}"
cargo build --release -p xenic-bench --bins
mkdir -p results
run() { echo "== $1"; ./target/release/"$1" ${2:-} | tee "results/$1.txt"; }
run fig2_latency
run fig3_batching
run fig4_dma
run table1_cores
run table2_lookup
echo "== fig8_sweep all"; ./target/release/fig8_sweep all --jobs "$JOBS" | tee results/fig8_all.txt
run table3_threads
run fig9_ablation "--jobs $JOBS"
run drtmr_comparison
run cache_pressure "--jobs $JOBS"
run phase_breakdown
run perf_report
echo "All experiments complete; outputs in results/."
