//! Tracer integration tests: determinism of the export, observer purity
//! (tracing never perturbs protocol outcomes), and span hygiene across
//! full cluster runs.

use xenic::api::{make_key, Partitioning, ShipMode, TxnSpec, UpdateOp, Workload};
use xenic::engine::{Xenic, XenicNode};
use xenic::harness::{run_xenic, run_xenic_cluster, RunOptions};
use xenic::msg::XMsg;
use xenic::XenicConfig;
use xenic_hw::HwParams;
use xenic_net::{Cluster, Exec, FaultPlan, NetConfig};
use xenic_sim::{DetRng, SimTime, TraceConfig, TraceKind};
use xenic_store::Value;
use xenic_workloads::{Retwis, RetwisConfig};

/// Counter workload (same shape as the integration suite's): single
/// remote-update transactions whose effects are exactly auditable.
struct Counters {
    keys: u64,
    remote_frac: f64,
}

impl Workload for Counters {
    fn next_txn(&mut self, node: usize, rng: &mut DetRng) -> TxnSpec {
        let shard = if rng.chance(self.remote_frac) {
            rng.below(6) as u32
        } else {
            node as u32
        };
        TxnSpec {
            reads: vec![make_key(node as u32, rng.below(self.keys))],
            updates: vec![(make_key(shard, rng.below(self.keys)), UpdateOp::AddI64(1))],
            exec_host_ns: 150,
            exec_nic_ns: 480,
            ship: ShipMode::Nic,
            ..Default::default()
        }
    }

    fn value_bytes(&self) -> u32 {
        16
    }

    fn preload(&self, shard: u32) -> Vec<(u64, Value)> {
        (0..self.keys)
            .map(|i| (make_key(shard, i), Value::from_bytes(&0i64.to_le_bytes())))
            .collect()
    }
}

fn traced_opts(seed: u64) -> RunOptions {
    RunOptions {
        windows: 12,
        warmup: SimTime::from_ms(1),
        measure: SimTime::from_ms(3),
        seed,
        lanes: 1,
    }
}

fn mk_retwis(_: usize) -> Box<dyn Workload> {
    Box::new(Retwis::new(RetwisConfig {
        keys_per_node: 20_000,
        ..RetwisConfig::sim(6)
    }))
}

#[test]
fn export_is_byte_identical_across_reruns() {
    // The whole observability pipeline — event recording, gauge sampling,
    // span matching, JSON formatting — must be a pure function of
    // (configuration, seed). We assert it at the strongest level: the
    // exported bytes. Once fault-free, once under a lossy fault plan.
    let export = |net: NetConfig| {
        let (_, cluster) = run_xenic_cluster(
            HwParams::paper_testbed(),
            net.with_trace(TraceConfig::full().with_capacity(1 << 22)),
            XenicConfig::full(),
            &traced_opts(7),
            mk_retwis,
        );
        assert_eq!(cluster.rt.tracer().dropped(), 0, "ring must not evict here");
        (
            cluster.rt.tracer().chrome_json(),
            cluster.rt.tracer().gauges_csv(),
        )
    };
    let (json_a, csv_a) = export(NetConfig::full());
    let (json_b, csv_b) = export(NetConfig::full());
    assert!(json_a == json_b, "chrome export must be byte-identical");
    assert!(csv_a == csv_b, "gauge CSV must be byte-identical");

    let lossy = || NetConfig::full().with_faults(FaultPlan::lossy(0.01, 0.01, 1_500));
    let (json_c, _) = export(lossy());
    let (json_d, _) = export(lossy());
    assert!(json_c == json_d, "lossy-universe export must replay too");
    assert!(json_a != json_c, "faults must perturb the event stream");
}

#[test]
fn range_walk_tracing_is_a_pure_observer_and_emits_instants() {
    // Same purity contract as `tracing_is_a_pure_observer`, but over the
    // scan crossfire workload so the range paths are on the hot path:
    // the `RangeWalk` (Execute-phase ordered-index walk) and
    // `RangeRecheck` (Validate-phase re-walk) instants must appear in
    // the trace without perturbing one measured bit of the run.
    use xenic_bench::fuzz::ScanWl;
    let mk = |_: usize| Box::new(ScanWl { span: 16 }) as Box<dyn Workload>;
    let digest = |net: NetConfig| {
        let r = run_xenic(
            HwParams::paper_testbed(),
            net,
            XenicConfig::full(),
            &traced_opts(13),
            mk,
        );
        (r.committed, r.aborted, r.p50_ns, r.p99_ns, r.ops_per_frame)
    };
    let plain = digest(NetConfig::full());
    let disabled = digest(NetConfig::full().with_trace(TraceConfig::disabled()));
    let traced = digest(NetConfig::full().with_trace(TraceConfig::full()));
    assert_eq!(plain, disabled, "disabled tracing must be invisible");
    assert_eq!(plain, traced, "enabled tracing must not perturb scans");

    let (_, cluster) = run_xenic_cluster(
        HwParams::paper_testbed(),
        NetConfig::full().with_trace(TraceConfig::full().with_capacity(1 << 22)),
        XenicConfig::full(),
        &traced_opts(13),
        mk,
    );
    let tracer = cluster.rt.tracer();
    assert_eq!(tracer.dropped(), 0, "ring must hold the whole run");
    let (mut walks, mut rechecks) = (0u64, 0u64);
    for ev in tracer.events() {
        if matches!(ev.kind, TraceKind::Instant { .. }) {
            match ev.name {
                "RangeWalk" => walks += 1,
                "RangeRecheck" => rechecks += 1,
                _ => {}
            }
        }
    }
    assert!(walks > 100, "expected many Execute walks, saw {walks}");
    assert!(rechecks > 20, "expected Validate re-walks, saw {rechecks}");
}

#[test]
fn tracing_is_a_pure_observer() {
    // Three universes that must be indistinguishable at the protocol
    // level: no trace config at all, tracing explicitly disabled, and
    // tracing fully on. The first two are the "zero-cost when disabled"
    // contract; the third holds because recording only mutates the
    // tracer (gauge sampling reads hardware state, never advances it).
    let digest = |net: NetConfig| {
        let r = run_xenic(
            HwParams::paper_testbed(),
            net,
            XenicConfig::full(),
            &traced_opts(9),
            |_| {
                Box::new(Counters {
                    keys: 2000,
                    remote_frac: 0.6,
                }) as Box<dyn Workload>
            },
        );
        (r.committed, r.aborted, r.p50_ns, r.p99_ns, r.ops_per_frame)
    };
    let plain = digest(NetConfig::full());
    let disabled = digest(NetConfig::full().with_trace(TraceConfig::disabled()));
    let traced = digest(NetConfig::full().with_trace(TraceConfig::full()));
    assert_eq!(plain, disabled, "disabled tracing must be invisible");
    assert_eq!(plain, traced, "enabled tracing must not perturb the run");
}

/// Builds a traced counter cluster with every window seeded.
fn traced_counter_cluster(windows: usize, seed: u64, cfg: XenicConfig) -> Cluster<Xenic> {
    let part = Partitioning::new(6, 3);
    let net = NetConfig::full().with_trace(TraceConfig::spans().with_capacity(1 << 22));
    let mut cluster: Cluster<Xenic> =
        Cluster::new(HwParams::paper_testbed(), net, seed, |node| {
            XenicNode::new(
                node,
                cfg,
                part,
                Box::new(Counters {
                    keys: 3000,
                    remote_frac: 0.7,
                }),
                windows,
            )
        });
    for node in 0..6 {
        for slot in 0..windows {
            cluster.seed(
                SimTime::from_ns((node * windows + slot) as u64 * 97),
                node,
                Exec::Host,
                XMsg::StartTxn { slot: slot as u32 },
            );
        }
    }
    cluster
}

#[test]
fn drained_run_leaves_no_open_spans() {
    // Every span the engine opens must be closed on every path — commit,
    // read-only commit, local fast path, multi-hop, abort. After a full
    // drain nothing is in flight, so an unmatched begin can only mean a
    // leaked span on some protocol path.
    let mut cluster = traced_counter_cluster(8, 21, XenicConfig::full());
    cluster.run_until(SimTime::from_ms(4));
    for st in &mut cluster.states {
        st.draining = true;
    }
    cluster.run_until(SimTime::from_ms(80));
    let tracer = cluster.rt.tracer();
    assert_eq!(tracer.dropped(), 0, "sized the ring to hold everything");
    assert!(tracer.spans().len() > 1_000, "run must have produced spans");
    assert_eq!(
        tracer.open_span_count(),
        0,
        "a drained run must close every span it opened"
    );
}

#[test]
fn committed_txn_spans_cover_the_protocol_in_order() {
    // For standard-path committed transactions the tracer must show the
    // paper's §4.2 anatomy: Execute, then Validate, then Log, each
    // non-overlapping and in order, with the Commit instant at or after
    // the Log close. (Multi-hop transactions show a single Execute span;
    // read-only ones skip Log — both are filtered out by requiring all
    // three spans for an id.) Multi-hop is disabled so the single-shard
    // counter transactions take the standard Execute/Validate/Log path.
    use std::collections::{BTreeMap, HashMap};
    let mut cluster = traced_counter_cluster(
        8,
        33,
        XenicConfig {
            occ_multihop: false,
            ..XenicConfig::full()
        },
    );
    cluster.run_until(SimTime::from_ms(4));
    let tracer = cluster.rt.tracer();

    type PhaseWindows = BTreeMap<&'static str, (SimTime, SimTime)>;
    let mut by_id: HashMap<(u32, u64), PhaseWindows> = HashMap::new();
    for s in tracer.spans() {
        by_id.entry((s.node, s.id)).or_default().insert(s.name, (s.begin, s.end));
    }
    let mut commit_at: HashMap<(u32, u64), SimTime> = HashMap::new();
    for ev in tracer.events() {
        if let TraceKind::Instant { id } = ev.kind {
            if ev.name == "Commit" {
                commit_at.insert((ev.node, id), ev.at);
            }
        }
    }

    let mut checked = 0usize;
    for (key, phases) in &by_id {
        let (Some(exec), Some(val), Some(log)) = (
            phases.get("Execute"),
            phases.get("Validate"),
            phases.get("Log"),
        ) else {
            continue;
        };
        let Some(&commit) = commit_at.get(key) else {
            continue; // aborted or still in flight
        };
        assert!(exec.0 <= exec.1, "Execute must not run backwards");
        assert!(exec.1 <= val.0, "Validate must start after Execute ends");
        assert!(val.0 <= val.1 && val.1 <= log.0, "Log must follow Validate");
        assert!(log.0 <= log.1 && log.1 <= commit, "Commit seals the Log phase");
        checked += 1;
    }
    assert!(
        checked > 500,
        "expected many standard-path commits, checked only {checked}"
    );
}
