//! Chaos tests: whole-cluster runs under deterministic fault injection.
//!
//! Each test runs the exactly-auditable counter workload through a
//! [`FaultPlan`] — message loss, duplication, delay jitter, timed
//! partitions, and crash/restart — then drains and audits the strongest
//! invariants the engine offers: committed-increment conservation,
//! replica convergence, and an empty commit log. The plans are
//! deterministic, so every one of these runs is replayable bit for bit.
//!
//! The `all_backends_*` tests run the same drills over every pluggable
//! replication backend (DESIGN.md §15) — DMA log shipping, Raft-style
//! leader commit, Hermes-style invalidation — so each backend earns the
//! same conservation/convergence/recovery guarantees individually.

use xenic::api::{make_key, Partitioning, ShipMode, TxnSpec, UpdateOp, Workload};
use xenic::engine::{Xenic, XenicNode};
use xenic::msg::XMsg;
use xenic::recovery::{audit_recovery, recover_shard};
use xenic::{ReplBackend, XenicConfig};
use xenic_hw::HwParams;
use xenic_net::{Cluster, Exec, FaultPlan, NetConfig};
use xenic_sim::{DetRng, SimTime};
use xenic_store::Value;

/// Counter workload whose committed effects are exactly auditable: every
/// transaction adds 1 to a single counter, so after a full drain the sum
/// of all counters must equal the number of committed transactions.
struct Counters {
    keys: u64,
    remote_frac: f64,
}

impl Workload for Counters {
    fn next_txn(&mut self, node: usize, rng: &mut DetRng) -> TxnSpec {
        let shard = if rng.chance(self.remote_frac) {
            rng.below(6) as u32
        } else {
            node as u32
        };
        TxnSpec {
            reads: vec![make_key(node as u32, rng.below(self.keys))],
            updates: vec![(make_key(shard, rng.below(self.keys)), UpdateOp::AddI64(1))],
            exec_host_ns: 150,
            exec_nic_ns: 480,
            ship: ShipMode::Nic,
            ..Default::default()
        }
    }

    fn value_bytes(&self) -> u32 {
        16
    }

    fn preload(&self, shard: u32) -> Vec<(u64, Value)> {
        (0..self.keys)
            .map(|i| (make_key(shard, i), Value::from_bytes(&0i64.to_le_bytes())))
            .collect()
    }
}

fn chaos_cluster(windows: usize, seed: u64, plan: FaultPlan) -> Cluster<Xenic> {
    chaos_cluster_cfg(XenicConfig::full(), windows, seed, plan)
}

fn chaos_cluster_cfg(
    cfg: XenicConfig,
    windows: usize,
    seed: u64,
    plan: FaultPlan,
) -> Cluster<Xenic> {
    let part = Partitioning::new(6, 3);
    let net = NetConfig::full().with_faults(plan);
    let mut cluster: Cluster<Xenic> =
        Cluster::new(HwParams::paper_testbed(), net, seed, |node| {
            XenicNode::new(
                node,
                cfg,
                part,
                Box::new(Counters {
                    keys: 3000,
                    remote_frac: 0.7,
                }),
                windows,
            )
        });
    for node in 0..6 {
        for slot in 0..windows {
            cluster.seed(
                SimTime::from_ns((node * windows + slot) as u64 * 97),
                node,
                Exec::Host,
                XMsg::StartTxn { slot: slot as u32 },
            );
        }
    }
    for st in &mut cluster.states {
        st.stats.start_measuring(SimTime::ZERO);
    }
    cluster
}

fn drain(cluster: &mut Cluster<Xenic>, until: SimTime) {
    for st in &mut cluster.states {
        st.draining = true;
    }
    cluster.run_until(until);
}

/// Sum of all primary counters across the cluster.
fn counter_sum(cluster: &Cluster<Xenic>) -> i64 {
    let mut sum = 0i64;
    for st in &cluster.states {
        for (k, _) in st.host_table.iter_keys() {
            let (v, _) = st.host_table.get(k).expect("key present");
            sum += i64::from_le_bytes(v.bytes()[..8].try_into().unwrap());
        }
    }
    sum
}

fn committed_total(cluster: &Cluster<Xenic>) -> u64 {
    cluster
        .states
        .iter()
        .map(|s| s.stats.committed_all.get())
        .sum()
}

fn assert_conserved(cluster: &Cluster<Xenic>, min_committed: u64) {
    let committed = committed_total(cluster);
    assert!(committed > min_committed, "committed only {committed}");
    assert_eq!(
        counter_sum(cluster) as u64,
        committed,
        "increments lost or duplicated under faults"
    );
    let outstanding: usize = cluster.states.iter().map(|s| s.log.outstanding()).sum();
    assert_eq!(outstanding, 0, "drain must apply every log record");
}

fn assert_replicas_converged(cluster: &Cluster<Xenic>) {
    let part = Partitioning::new(6, 3);
    for shard in 0..6u32 {
        let primary = &cluster.states[part.primary(shard)];
        for &b in &part.backups(shard) {
            let map = cluster.states[b]
                .backups
                .get(&shard)
                .expect("backup map exists");
            for (k, (bv, bver)) in map {
                let (pv, pver) = primary.host_table.get(*k).expect("primary has key");
                assert_eq!(pver, *bver, "version diverged for key {k}");
                assert_eq!(pv, bv, "value diverged for key {k}");
            }
        }
    }
}

#[test]
fn increments_conserved_under_loss_and_duplication() {
    // 1% drop + 1% duplication + 2us jitter on every link. Retransmission
    // must recover every lost message, and dedup must absorb every
    // duplicate, or the conservation equality breaks exactly.
    let plan = FaultPlan::lossy(0.01, 0.01, 2_000);
    let mut cluster = chaos_cluster(8, 71, plan);
    cluster.run_until(SimTime::from_ms(5));
    drain(&mut cluster, SimTime::from_ms(200));
    assert_conserved(&cluster, 2_000);
}

#[test]
fn replicas_converge_after_partition_heals() {
    // Mild loss everywhere, plus a 1.5ms pairwise partition between
    // nodes 0 and 3 in the middle of the run. The partition heals before
    // the drain, so retransmission must finish every in-flight
    // replication and all replicas must agree.
    let plan = FaultPlan::lossy(0.005, 0.005, 1_000).with_partition(0, 3, 1_000_000, 2_500_000);
    let mut cluster = chaos_cluster(6, 72, plan);
    cluster.run_until(SimTime::from_ms(5));
    drain(&mut cluster, SimTime::from_ms(200));
    assert_conserved(&cluster, 1_500);
    assert_replicas_converged(&cluster);
}

#[test]
fn crash_restart_preserves_conservation_then_recovers() {
    // Node 4 crash-stops at 2ms and restarts at 3ms (memory intact,
    // in-flight events and inboxes lost), with background loss on every
    // link. After the drain the usual invariants must hold; then node 4
    // is declared permanently failed and the recovery module must rebuild
    // its primary shard from the surviving replicas.
    let plan = FaultPlan::lossy(0.002, 0.002, 500).with_crash(4, 2_000_000, Some(3_000_000));
    let mut cluster = chaos_cluster(6, 73, plan);
    cluster.run_until(SimTime::from_ms(5));
    drain(&mut cluster, SimTime::from_ms(300));
    assert_conserved(&cluster, 1_500);
    assert_replicas_converged(&cluster);

    const FAILED: usize = 4;
    let part = Partitioning::new(6, 3);
    let mut refs: Vec<Option<&mut XenicNode>> = cluster
        .states
        .iter_mut()
        .enumerate()
        .map(|(i, s)| if i == FAILED { None } else { Some(s) })
        .collect();
    let report = recover_shard(&mut refs, &part, FAILED);
    assert!(report.keys_recovered >= 3000, "{}", report.keys_recovered);
    let ro: Vec<Option<&XenicNode>> = cluster
        .states
        .iter()
        .enumerate()
        .map(|(i, s)| if i == FAILED { None } else { Some(s) })
        .collect();
    audit_recovery(&ro, &part, FAILED, report.new_primary).expect("recovery audit");
}

/// Post-drain residue check shared by the per-backend drills: no
/// lingering Hermes invalidation marks (every INV must have been
/// resolved by its retransmitted VAL) and no backup appends still
/// buffered behind a version gap (every Raft laggard catch-up must have
/// completed) — both trivially true for the backends that don't use the
/// respective machinery.
fn assert_no_invalidation_residue(cluster: &Cluster<Xenic>) {
    for (n, st) in cluster.states.iter().enumerate() {
        assert_eq!(
            st.hermes_pending_invalidations(),
            0,
            "node {n}: invalidation marks survived the drain"
        );
        assert_eq!(
            st.backup_gap_entries(),
            0,
            "node {n}: version-gapped backup appends survived the drain"
        );
    }
}

/// Every replication backend conserves committed increments — and keeps
/// all replicas convergent — under message loss and duplication. Loss
/// exercises each backend's own retransmission machinery (log-shipping
/// unacked resends, Raft laggard catch-up, Hermes INV/VAL redelivery);
/// duplication exercises its dedup.
#[test]
fn all_backends_conserve_under_loss_and_duplication() {
    for &backend in ReplBackend::ALL.iter() {
        let plan = FaultPlan::lossy(0.01, 0.01, 2_000);
        let mut cluster = chaos_cluster_cfg(XenicConfig::with_backend(backend), 6, 81, plan);
        cluster.run_until(SimTime::from_ms(4));
        drain(&mut cluster, SimTime::from_ms(200));
        assert_conserved(&cluster, 1_000);
        assert_replicas_converged(&cluster);
        assert_no_invalidation_residue(&cluster);
    }
}

/// Every backend converges across a healed partition: nodes 0 and 3
/// cannot exchange appends/acks/validations for 1.5ms mid-run, so each
/// backend's redelivery path must finish every stalled replication after
/// the heal.
#[test]
fn all_backends_converge_after_partition_heals() {
    for &backend in ReplBackend::ALL.iter() {
        let plan =
            FaultPlan::lossy(0.005, 0.005, 1_000).with_partition(0, 3, 1_000_000, 2_500_000);
        let mut cluster = chaos_cluster_cfg(XenicConfig::with_backend(backend), 6, 82, plan);
        cluster.run_until(SimTime::from_ms(4));
        drain(&mut cluster, SimTime::from_ms(200));
        assert_conserved(&cluster, 1_000);
        assert_replicas_converged(&cluster);
        assert_no_invalidation_residue(&cluster);
    }
}

/// Every backend survives a crash/restart (node 4 down for 1ms with
/// background loss), drains clean, and then hands a consistent enough
/// cluster to the recovery module: node 4 is declared permanently failed
/// and `recover_shard` + `audit_recovery` must rebuild its shard from
/// the survivors — the crash re-priming and evidence rules the
/// Replication trait owes recovery (DESIGN.md §15).
#[test]
fn all_backends_recover_after_crash_restart() {
    for &backend in ReplBackend::ALL.iter() {
        let plan = FaultPlan::lossy(0.002, 0.002, 500).with_crash(4, 2_000_000, Some(3_000_000));
        let mut cluster = chaos_cluster_cfg(XenicConfig::with_backend(backend), 6, 83, plan);
        cluster.run_until(SimTime::from_ms(4));
        drain(&mut cluster, SimTime::from_ms(300));
        assert_conserved(&cluster, 1_000);
        assert_replicas_converged(&cluster);
        assert_no_invalidation_residue(&cluster);

        const FAILED: usize = 4;
        let part = Partitioning::new(6, 3);
        let mut refs: Vec<Option<&mut XenicNode>> = cluster
            .states
            .iter_mut()
            .enumerate()
            .map(|(i, s)| if i == FAILED { None } else { Some(s) })
            .collect();
        let report = recover_shard(&mut refs, &part, FAILED);
        assert!(
            report.keys_recovered >= 3000,
            "{backend:?}: recovered only {}",
            report.keys_recovered
        );
        let ro: Vec<Option<&XenicNode>> = cluster
            .states
            .iter()
            .enumerate()
            .map(|(i, s)| if i == FAILED { None } else { Some(s) })
            .collect();
        audit_recovery(&ro, &part, FAILED, report.new_primary)
            .unwrap_or_else(|e| panic!("{backend:?}: recovery audit failed: {e}"));
    }
}

#[test]
fn chaos_runs_are_deterministic() {
    // The entire fault schedule draws from a dedicated RNG stream seeded
    // by the cluster seed, so an identical (seed, plan) pair must replay
    // the run bit for bit — committed counts, per-key tables, versions,
    // everything. A different seed must produce a different universe.
    let plan = || {
        FaultPlan::lossy(0.02, 0.01, 3_000)
            .with_partition(1, 5, 1_500_000, 2_200_000)
            .with_crash(2, 2_400_000, Some(3_100_000))
    };
    let fingerprint = |seed: u64| {
        let mut cluster = chaos_cluster(6, seed, plan());
        cluster.run_until(SimTime::from_ms(4));
        drain(&mut cluster, SimTime::from_ms(250));
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for st in &cluster.states {
            let mut keys: Vec<u64> = st.host_table.iter_keys().map(|(k, _)| k).collect();
            keys.sort_unstable();
            for k in keys {
                let (v, ver) = st.host_table.get(k).expect("key present");
                for b in v.bytes() {
                    digest = (digest ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
                }
                digest = (digest ^ ver).wrapping_mul(0x100_0000_01b3);
            }
        }
        let aborted: u64 = cluster.states.iter().map(|s| s.stats.aborted.get()).sum();
        (committed_total(&cluster), aborted, digest)
    };
    assert_eq!(fingerprint(9), fingerprint(9), "same seed, same universe");
    assert_ne!(fingerprint(9), fingerprint(10), "seeds must matter");
}
