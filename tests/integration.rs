//! Cross-crate integration tests: whole-cluster runs spanning the
//! simulator, hardware models, data stores, protocol engines, and
//! workloads.

use xenic::api::{make_key, Partitioning, ShipMode, TxnSpec, UpdateOp, Workload};
use xenic::engine::{Xenic, XenicNode};
use xenic::harness::{run_xenic, RunOptions};
use xenic::msg::XMsg;
use xenic::recovery::{audit_recovery, recover_shard};
use xenic::XenicConfig;
use xenic_baselines::{run_baseline, BaselineKind};
use xenic_hw::HwParams;
use xenic_net::{Cluster, Exec, FaultPlan, NetConfig};
use xenic_sim::{DetRng, SimTime};
use xenic_store::Value;
use xenic_workloads::{Retwis, RetwisConfig, Smallbank, SmallbankConfig, Tpcc, TpccConfig, TpccMix};

/// A factory for per-node workload generators.
type WorkloadFactory = Box<dyn Fn(usize) -> Box<dyn Workload>>;

/// Counter workload whose committed effects are exactly auditable.
struct Counters {
    keys: u64,
    remote_frac: f64,
}

impl Workload for Counters {
    fn next_txn(&mut self, node: usize, rng: &mut DetRng) -> TxnSpec {
        let shard = if rng.chance(self.remote_frac) {
            rng.below(6) as u32
        } else {
            node as u32
        };
        TxnSpec {
            reads: vec![make_key(node as u32, rng.below(self.keys))],
            updates: vec![(make_key(shard, rng.below(self.keys)), UpdateOp::AddI64(1))],
            exec_host_ns: 150,
            exec_nic_ns: 480,
            ship: ShipMode::Nic,
            ..Default::default()
        }
    }

    fn value_bytes(&self) -> u32 {
        16
    }

    fn preload(&self, shard: u32) -> Vec<(u64, Value)> {
        (0..self.keys)
            .map(|i| (make_key(shard, i), Value::from_bytes(&0i64.to_le_bytes())))
            .collect()
    }
}

fn counter_cluster(windows: usize, seed: u64) -> Cluster<Xenic> {
    let part = Partitioning::new(6, 3);
    let mut cluster: Cluster<Xenic> =
        Cluster::new(HwParams::paper_testbed(), NetConfig::full(), seed, |node| {
            XenicNode::new(
                node,
                XenicConfig::full(),
                part,
                Box::new(Counters {
                    keys: 3000,
                    remote_frac: 0.7,
                }),
                windows,
            )
        });
    for node in 0..6 {
        for slot in 0..windows {
            cluster.seed(
                SimTime::from_ns((node * windows + slot) as u64 * 97),
                node,
                Exec::Host,
                XMsg::StartTxn { slot: slot as u32 },
            );
        }
    }
    for st in &mut cluster.states {
        st.stats.start_measuring(SimTime::ZERO);
    }
    cluster
}

fn drain(cluster: &mut Cluster<Xenic>, until: SimTime) {
    for st in &mut cluster.states {
        st.draining = true;
    }
    cluster.run_until(until);
}

#[test]
fn committed_increments_are_exactly_conserved() {
    // The strongest end-to-end serializability audit available: after a
    // full drain, the sum of all counters must equal the number of
    // committed increment transactions — any lost, doubled, or phantom
    // write breaks the equality exactly.
    let mut cluster = counter_cluster(8, 21);
    cluster.run_until(SimTime::from_ms(6));
    drain(&mut cluster, SimTime::from_ms(80));
    let committed: u64 = cluster
        .states
        .iter()
        .map(|s| s.stats.committed_all.get())
        .sum();
    assert!(committed > 5_000, "committed {committed}");
    let mut sum = 0i64;
    for st in &cluster.states {
        for (k, _) in st.host_table.iter_keys() {
            let (v, _) = st.host_table.get(k).expect("key present");
            sum += i64::from_le_bytes(v.bytes()[..8].try_into().unwrap());
        }
    }
    assert_eq!(sum as u64, committed, "increments lost or duplicated");
    let outstanding: usize = cluster.states.iter().map(|s| s.log.outstanding()).sum();
    assert_eq!(outstanding, 0, "drain must apply every log record");
}

#[test]
fn replicas_converge_after_drain() {
    let mut cluster = counter_cluster(6, 33);
    cluster.run_until(SimTime::from_ms(5));
    drain(&mut cluster, SimTime::from_ms(80));
    let part = Partitioning::new(6, 3);
    // Every backup's copy of a shard must equal the primary's table.
    for shard in 0..6u32 {
        let primary = &cluster.states[part.primary(shard)];
        for &b in &part.backups(shard) {
            let map = cluster.states[b]
                .backups
                .get(&shard)
                .expect("backup map exists");
            for (k, (bv, bver)) in map {
                let (pv, pver) = primary.host_table.get(*k).expect("primary has key");
                assert_eq!(pver, *bver, "version diverged for key {k}");
                assert_eq!(pv, bv, "value diverged for key {k}");
            }
        }
    }
}

#[test]
fn failover_mid_run_loses_nothing_committed() {
    let mut cluster = counter_cluster(6, 55);
    cluster.run_until(SimTime::from_ms(4));
    let part = Partitioning::new(6, 3);
    const FAILED: usize = 1;
    let mut refs: Vec<Option<&mut XenicNode>> = cluster
        .states
        .iter_mut()
        .enumerate()
        .map(|(i, s)| if i == FAILED { None } else { Some(s) })
        .collect();
    let report = recover_shard(&mut refs, &part, FAILED);
    assert!(report.keys_recovered >= 3000);
    let ro: Vec<Option<&XenicNode>> = cluster
        .states
        .iter()
        .enumerate()
        .map(|(i, s)| if i == FAILED { None } else { Some(s) })
        .collect();
    audit_recovery(&ro, &part, FAILED, report.new_primary).expect("recovery audit");
}

#[test]
fn all_five_systems_run_every_workload() {
    let opts = RunOptions {
        windows: 4,
        warmup: SimTime::from_ms(1),
        measure: SimTime::from_ms(3),
        seed: 5,
        lanes: 1,
    };
    let params = HwParams::paper_testbed();
    let workloads: [(&str, WorkloadFactory); 3] = [
        (
            "smallbank",
            Box::new(|_| {
                Box::new(Smallbank::new(SmallbankConfig {
                    accounts_per_node: 20_000,
                    ..SmallbankConfig::sim(6)
                })) as Box<dyn Workload>
            }),
        ),
        (
            "retwis",
            Box::new(|_| {
                Box::new(Retwis::new(RetwisConfig {
                    keys_per_node: 20_000,
                    ..RetwisConfig::sim(6)
                })) as Box<dyn Workload>
            }),
        ),
        (
            "tpcc",
            Box::new(|_| {
                Box::new(Tpcc::new(TpccConfig {
                    warehouses_per_node: 4,
                    ..TpccConfig::sim(6, TpccMix::Full)
                })) as Box<dyn Workload>
            }),
        ),
    ];
    for (name, mkw) in &workloads {
        let x = run_xenic(
            params.clone(),
            NetConfig::full(),
            XenicConfig::full(),
            &opts,
            mkw.as_ref(),
        );
        assert!(x.committed > 100, "{name}/xenic committed {}", x.committed);
        for kind in [
            BaselineKind::DrtmH,
            BaselineKind::DrtmHNc,
            BaselineKind::Fasst,
            BaselineKind::DrtmR,
        ] {
            let r = run_baseline(kind, params.clone(), &opts, mkw.as_ref());
            assert!(
                r.committed > 50,
                "{name}/{kind:?} committed {}",
                r.committed
            );
        }
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run = |seed, net: NetConfig| {
        let r = run_xenic(
            HwParams::paper_testbed(),
            net,
            XenicConfig::full(),
            &RunOptions {
                windows: 6,
                warmup: SimTime::from_ms(1),
                measure: SimTime::from_ms(4),
                seed,
                lanes: 1,
            },
            |_| {
                Box::new(Counters {
                    keys: 2000,
                    remote_frac: 0.6,
                })
            },
        );
        (r.committed, r.p50_ns, r.aborted)
    };
    assert_eq!(
        run(9, NetConfig::full()),
        run(9, NetConfig::full()),
        "same seed, same universe"
    );
    assert_ne!(
        run(9, NetConfig::full()),
        run(10, NetConfig::full()),
        "different seed, different schedule"
    );
    // Determinism must survive fault injection: the fault schedule is a
    // pure function of (seed, plan), so a lossy universe replays too.
    let lossy = || NetConfig::full().with_faults(FaultPlan::lossy(0.01, 0.01, 1_500));
    assert_eq!(
        run(9, lossy()),
        run(9, lossy()),
        "same seed, same faulty universe"
    );
    assert_ne!(
        run(9, lossy()),
        run(9, NetConfig::full()),
        "faults must perturb the run"
    );
}

#[test]
fn half_bandwidth_lowers_peak_throughput() {
    let mk = |_: usize| -> Box<dyn Workload> {
        Box::new(Tpcc::new(TpccConfig {
            warehouses_per_node: 8,
            ..TpccConfig::sim(6, TpccMix::NewOrderOnly)
        }))
    };
    let opts = RunOptions {
        windows: 48,
        warmup: SimTime::from_ms(2),
        measure: SimTime::from_ms(5),
        seed: 3,
        lanes: 1,
    };
    let full = run_xenic(
        HwParams::paper_testbed(),
        NetConfig::full(),
        XenicConfig::full(),
        &opts,
        mk,
    );
    let half = run_xenic(
        HwParams::paper_testbed_half_bandwidth(),
        NetConfig::full(),
        XenicConfig::full(),
        &opts,
        mk,
    );
    assert!(
        half.tput_per_server < full.tput_per_server,
        "halving bandwidth must cost throughput: {} vs {}",
        half.tput_per_server,
        full.tput_per_server
    );
}

#[test]
fn xenic_beats_best_baseline_on_paper_benchmarks() {
    // The headline claim at a fixed moderate-to-high load level.
    let opts = RunOptions {
        windows: 48,
        warmup: SimTime::from_ms(2),
        measure: SimTime::from_ms(5),
        seed: 42,
        lanes: 1,
    };
    let params = HwParams::paper_testbed();
    let mk = |_: usize| -> Box<dyn Workload> {
        Box::new(Smallbank::new(SmallbankConfig {
            accounts_per_node: 60_000,
            ..SmallbankConfig::sim(6)
        }))
    };
    let x = run_xenic(
        params.clone(),
        NetConfig::full(),
        XenicConfig::full(),
        &opts,
        mk,
    );
    let best_baseline = [BaselineKind::DrtmH, BaselineKind::Fasst, BaselineKind::DrtmR]
        .into_iter()
        .map(|k| run_baseline(k, params.clone(), &opts, mk).tput_per_server)
        .fold(0.0f64, f64::max);
    assert!(
        x.tput_per_server > best_baseline * 1.2,
        "Xenic {} vs best baseline {}",
        x.tput_per_server,
        best_baseline
    );
}

#[test]
fn scan_workloads_run_under_xenic_and_fasst_serializably() {
    // The two range-scan evaluation workloads — YCSB-E (95% scans) and
    // the scan-weighted TPC-C stock-level mix — must run under Xenic
    // full *and* the FaSST baseline (the one other system that speaks
    // the scan protocol), commit real work including predicate reads,
    // and leave strictly serializable histories.
    use xenic::harness::run_xenic_recorded;
    use xenic_baselines::run_baseline_recorded;
    use xenic_check::{check_history, CheckOptions};
    use xenic_workloads::{YcsbE, YcsbEConfig};

    let opts = RunOptions {
        windows: 3,
        warmup: SimTime::from_us(500),
        measure: SimTime::from_ms(2),
        seed: 17,
        lanes: 1,
    };
    let params = HwParams::paper_testbed();
    let workloads: [(&str, WorkloadFactory); 2] = [
        (
            "ycsbe",
            Box::new(|_| {
                Box::new(YcsbE::new(YcsbEConfig {
                    keys_per_node: 5_000,
                    ..YcsbEConfig::sim(6)
                })) as Box<dyn Workload>
            }),
        ),
        (
            "tpcc_stock",
            Box::new(|_| {
                Box::new(Tpcc::new(TpccConfig {
                    warehouses_per_node: 2,
                    ..TpccConfig::sim(6, TpccMix::StockScan)
                })) as Box<dyn Workload>
            }),
        ),
    ];
    for (name, mkw) in &workloads {
        let (x, xh) = run_xenic_recorded(
            params.clone(),
            NetConfig::full(),
            XenicConfig::full(),
            &opts,
            mkw.as_ref(),
        );
        let (f, fh) = run_baseline_recorded(
            BaselineKind::Fasst,
            params.clone(),
            NetConfig::baseline(),
            &opts,
            mkw.as_ref(),
        );
        for (sys, r, h) in [("xenic", &x, &xh), ("fasst", &f, &fh)] {
            assert!(r.committed > 100, "{name}/{sys} committed {}", r.committed);
            let with_preds = h
                .committed()
                .filter(|(_, rec)| !rec.predicates.is_empty())
                .count();
            assert!(
                with_preds > 20,
                "{name}/{sys}: only {with_preds} committed scans recorded"
            );
            let report = check_history(h, &CheckOptions::strict());
            assert!(
                report.is_serializable(),
                "{name}/{sys} not serializable:\n{}",
                report.describe()
            );
        }
    }
}
