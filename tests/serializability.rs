//! End-to-end serializability checks through the fuzz harness: the sound
//! engines must verify, and — the checker's own acceptance test — a
//! deliberately weakened Xenic (`weaken_validation` skips Validate's
//! version re-check) must be **rejected** with a G2 witness cycle that
//! survives shrinking.

use xenic_bench::fuzz::{replay_cmd, run_point, shrink, FuzzPoint, FuzzSystem, WlKind};
use xenic_check::{AnomalyClass, Verdict};

fn point(system: FuzzSystem, wl: WlKind, seed: u64, plan: u32) -> FuzzPoint {
    FuzzPoint {
        system,
        wl,
        seed,
        plan,
        windows: 4,
        measure_us: 800,
    }
}

#[test]
fn sound_xenic_survives_the_write_skew_crossfire() {
    // The control arm: the same workload that breaks the weakened engine
    // below must pass with Validate intact.
    for seed in 1..=3 {
        let out = run_point(&point(FuzzSystem::Xenic, WlKind::Skew, seed, 0));
        assert!(out.committed > 50, "seed {seed}: committed {}", out.committed);
        assert!(
            out.passed(),
            "seed {seed}: sound Xenic rejected:\n{}",
            out.report.describe()
        );
    }
}

#[test]
fn weakened_validation_is_rejected_with_a_g2_cycle() {
    // Sweep a few seeds; skipping the Validate version re-check lets two
    // cross-shard transactions each read the key the other writes before
    // either lock request lands — classic write skew. At least one seed
    // must produce a history the DSG checker rejects, the witness must be
    // a G2 (anti-dependency) cycle, and shrinking must preserve the
    // failure so the printed replay command reproduces it.
    let failing = (1..=6)
        .map(|seed| point(FuzzSystem::XenicWeakened, WlKind::Skew, seed, 0))
        .find(|p| !run_point(p).passed())
        .expect("weakened validation must be caught on some seed");

    let out = run_point(&failing);
    match &out.report.verdict {
        Verdict::Cycle { class, witness } => {
            assert_eq!(*class, AnomalyClass::G2, "write skew must class as G2");
            assert!(witness.len() >= 2, "a cycle needs at least two edges");
        }
        other => panic!("expected a witness cycle, got {other:?}"),
    }
    let described = out.report.describe();
    assert!(described.contains("G2"), "describe() must name the class: {described}");

    // Shrinking keeps the failure and the replay command names the
    // shrunk point exactly.
    let small = shrink(failing);
    let small_out = run_point(&small);
    assert!(!small_out.passed(), "shrunk point must still fail");
    assert!(small.measure_us <= failing.measure_us && small.windows <= failing.windows);
    let cmd = replay_cmd(&small);
    for needle in [
        "serial_fuzz",
        "--replay",
        "--system xenic-weakened",
        "--wl skew",
        &format!("--seed {}", small.seed),
        &format!("--windows {}", small.windows),
    ] {
        assert!(cmd.contains(needle), "replay command missing `{needle}`: {cmd}");
    }
}

#[test]
fn sound_scan_engines_survive_the_phantom_crossfire() {
    // The control arm for the predicate self-test: the scan workload
    // pairs range observers with inserts into the observed ranges, and
    // both engines that speak the scan protocol (Xenic's NIC walk +
    // Validate re-walk, FaSST's RPC walk + re-walk) must keep every
    // history serializable under it.
    for system in [FuzzSystem::Xenic, FuzzSystem::Fasst] {
        for seed in 1..=2 {
            // Three windows, not four: FaSST's retry backoff collapses
            // under maximal crossfire concurrency, and a near-empty
            // history would verify vacuously.
            let out = run_point(&FuzzPoint {
                windows: 3,
                ..point(system, WlKind::Scan, seed, 0)
            });
            assert!(
                out.committed > 20,
                "{system:?} seed {seed}: committed {}",
                out.committed
            );
            assert!(
                out.passed(),
                "{system:?} seed {seed}: sound engine rejected:\n{}",
                out.report.describe()
            );
        }
    }
}

#[test]
fn weakened_predicate_locks_are_rejected_with_a_phantom_g2_cycle() {
    // Skipping only the Validate range re-walks (item version checks
    // stay intact) admits phantoms: both halves of a scan/insert pair
    // walk their ranges before either insert's lock lands, then commit
    // unchecked. The recorded predicates must turn that into a G2
    // (anti-dependency) witness cycle, and the witness must survive
    // shrinking so the replay command reproduces it. Jitter plans widen
    // the walk-before-lock window, so the sweep covers both fault-free
    // and jittered schedules (as `serial_fuzz`'s self-test does).
    let failing = [0u32, 1, 2, 4]
        .into_iter()
        .flat_map(|plan| {
            (1..=6).map(move |seed| point(FuzzSystem::XenicWeakPredicates, WlKind::Scan, seed, plan))
        })
        .find(|p| !run_point(p).passed())
        .expect("weakened predicate locks must be caught on some point");

    let out = run_point(&failing);
    match &out.report.verdict {
        Verdict::Cycle { class, witness } => {
            assert_eq!(*class, AnomalyClass::G2, "phantoms must class as G2");
            assert!(witness.len() >= 2, "a cycle needs at least two edges");
        }
        other => panic!("expected a witness cycle, got {other:?}"),
    }

    let small = shrink(failing);
    let small_out = run_point(&small);
    assert!(!small_out.passed(), "shrunk point must still fail");
    let cmd = replay_cmd(&small);
    for needle in ["--system xenic-weak-predicates", "--wl scan"] {
        assert!(cmd.contains(needle), "replay command missing `{needle}`: {cmd}");
    }
}
