//! Substrate conformance suite (DESIGN.md §17).
//!
//! Three contracts lock the substrate/placement refactor down:
//!
//! 1. **On-path identity** — `OnPathLiquidIO` (the default) must leave
//!    every historical pin byte-identical. The pins below were captured
//!    on the commit *before* the substrate refactor landed, so they
//!    prove the accessor indirection is an exact identity, not merely
//!    self-consistent.
//! 2. **Per-substrate determinism** — BlueField and CXL runs replay bit
//!    for bit from `(seed, config)`; their whole-cluster digests and
//!    commit fingerprints are pinned here.
//! 3. **Placement is an overlay** — `Placement` may move cost (p50/p99
//!    shift), but the committed transaction set, store digests, and
//!    event counts are byte-identical across placements, under chaos,
//!    for every replication backend. The off-path cliff and the CXL
//!    zero-log-shipping trade are asserted as *orderings*, not magic
//!    numbers.

use xenic::harness::{cluster_digest, run_xenic_cluster, RunOptions, RunResult};
use xenic::{Placement, ReplBackend, Workload, XenicConfig};
use xenic_hw::HwParams;
use xenic_net::{FaultPlan, NetConfig};
use xenic_sim::SimTime;
use xenic_workloads::{Retwis, RetwisConfig, Smallbank, SmallbankConfig};

/// One run's outcome fingerprint (latency intentionally excluded — it
/// is the one thing placement is allowed to move).
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
struct Fingerprint {
    committed: u64,
    aborted: u64,
    digest: u64,
    processed: u64,
}

fn quick_opts(seed: u64) -> RunOptions {
    RunOptions {
        windows: 2,
        warmup: SimTime::from_us(100),
        measure: SimTime::from_us(250),
        seed,
        lanes: 1,
    }
}

#[derive(Clone, Copy)]
enum Wl {
    Smallbank,
    Retwis,
}

fn mk_workload(wl: Wl) -> impl Fn(usize) -> Box<dyn Workload> {
    move |_| match wl {
        Wl::Smallbank => Box::new(Smallbank::new(SmallbankConfig {
            accounts_per_node: 5_000,
            ..SmallbankConfig::sim(6)
        })),
        Wl::Retwis => Box::new(Retwis::new(RetwisConfig::sim(6))),
    }
}

fn run(
    params: HwParams,
    net: NetConfig,
    cfg: XenicConfig,
    seed: u64,
    wl: Wl,
) -> (RunResult, Fingerprint) {
    let (r, cluster) = run_xenic_cluster(params, net, cfg, &quick_opts(seed), mk_workload(wl));
    let fp = Fingerprint {
        committed: r.committed,
        aborted: r.aborted,
        digest: cluster_digest(&cluster),
        processed: cluster.rt.queue.processed(),
    };
    (r, fp)
}

// ---------------------------------------------------------------------
// 1. On-path identity: pins captured BEFORE the substrate refactor.
// ---------------------------------------------------------------------

/// (committed, aborted, digest, processed, p50, p99) of a seed-21 quick
/// Smallbank run, captured on the pre-refactor tree. p50/p99 included:
/// the default `Placement::nic_resident()` overlay must be exactly zero.
const PRE_REFACTOR_SMALLBANK: (u64, u64, u64, u64, u64, u64) =
    (487, 6, 10304859322079988475, 41762, 5440, 14976);
/// Same capture for Retwis.
const PRE_REFACTOR_RETWIS: (u64, u64, u64, u64, u64, u64) =
    (404, 1, 10702730437129351841, 59844, 5824, 8576);

#[test]
fn onpath_identity_smallbank() {
    let (r, fp) = run(
        HwParams::paper_testbed(),
        NetConfig::full(),
        XenicConfig::full(),
        21,
        Wl::Smallbank,
    );
    assert_eq!(
        (fp.committed, fp.aborted, fp.digest, fp.processed, r.p50_ns, r.p99_ns),
        PRE_REFACTOR_SMALLBANK,
        "OnPathLiquidIO diverged from the pre-refactor tree"
    );
    // The paper's substrate ships its log over the DMA engine.
    assert!(r.log_ship_writes > 0);
    assert_eq!(r.cxl_log_writes, 0);
}

#[test]
fn onpath_identity_retwis() {
    let (r, fp) = run(
        HwParams::paper_testbed(),
        NetConfig::full(),
        XenicConfig::full(),
        21,
        Wl::Retwis,
    );
    assert_eq!(
        (fp.committed, fp.aborted, fp.digest, fp.processed, r.p50_ns, r.p99_ns),
        PRE_REFACTOR_RETWIS,
        "OnPathLiquidIO diverged from the pre-refactor tree"
    );
}

/// `weaken_cxl_coherence` must be a complete no-op away from the CXL
/// substrate — it guards a fence that only exists there.
#[test]
fn coherence_knob_is_noop_off_cxl() {
    let mut weak = XenicConfig::full();
    weak.weaken_cxl_coherence = true;
    let (_, base) = run(
        HwParams::paper_testbed(),
        NetConfig::full(),
        XenicConfig::full(),
        21,
        Wl::Smallbank,
    );
    let (_, weakened) = run(
        HwParams::paper_testbed(),
        NetConfig::full(),
        weak,
        21,
        Wl::Smallbank,
    );
    assert_eq!(base, weakened);
}

// ---------------------------------------------------------------------
// 2. Per-substrate pinned fingerprints.
// ---------------------------------------------------------------------

/// Pinned (committed, aborted, digest, processed) per (substrate,
/// workload), seed 21. Captured from the first verified run; update
/// only for a deliberate, understood simulation change.
const PIN_BLUEFIELD_SMALLBANK: (u64, u64, u64, u64) = (389, 1, 5289962508406324606, 33578);
const PIN_BLUEFIELD_RETWIS: (u64, u64, u64, u64) = (341, 0, 2211171818778143081, 50356);
const PIN_CXL_SMALLBANK: (u64, u64, u64, u64) = (521, 4, 12816737071200364745, 43273);
const PIN_CXL_RETWIS: (u64, u64, u64, u64) = (401, 0, 17998586196551017995, 56799);

#[test]
fn substrate_fingerprints_pinned() {
    for (params, wl, pin) in [
        (HwParams::off_path_bluefield(), Wl::Smallbank, PIN_BLUEFIELD_SMALLBANK),
        (HwParams::off_path_bluefield(), Wl::Retwis, PIN_BLUEFIELD_RETWIS),
        (HwParams::cxl_shared(), Wl::Smallbank, PIN_CXL_SMALLBANK),
        (HwParams::cxl_shared(), Wl::Retwis, PIN_CXL_RETWIS),
    ] {
        let token = params.substrate.token();
        let (_, fp) = run(params, NetConfig::full(), XenicConfig::full(), 21, wl);
        assert!(fp.committed > 0, "{token}: substrate run must commit work");
        assert_eq!(
            (fp.committed, fp.aborted, fp.digest, fp.processed),
            pin,
            "{token} fingerprint diverged"
        );
    }
}

// ---------------------------------------------------------------------
// 3. Trend tests: the off-path cliff and the CXL log-shipping trade.
// ---------------------------------------------------------------------

/// Host-heavy placement pays the reach-back per metadata word, and the
/// off-path switch hop makes each reach-back strictly worse: p99 must
/// order host-on-bluefield > host-on-onpath > nic-on-onpath.
#[test]
fn offpath_latency_cliff_ordering() {
    let host = XenicConfig::with_placement(Placement::host_resident());
    let (on_nic, _) = run(
        HwParams::paper_testbed(),
        NetConfig::full(),
        XenicConfig::full(),
        21,
        Wl::Smallbank,
    );
    let (on_host, _) = run(
        HwParams::paper_testbed(),
        NetConfig::full(),
        host,
        21,
        Wl::Smallbank,
    );
    let (bf_host, _) = run(
        HwParams::off_path_bluefield(),
        NetConfig::full(),
        host,
        21,
        Wl::Smallbank,
    );
    assert!(
        on_host.p99_ns > on_nic.p99_ns,
        "host placement must cost latency: {} <= {}",
        on_host.p99_ns,
        on_nic.p99_ns
    );
    assert!(
        bf_host.p99_ns > on_host.p99_ns,
        "off-path cliff missing: {} <= {}",
        bf_host.p99_ns,
        on_host.p99_ns
    );
    assert!(bf_host.p50_ns > on_nic.p50_ns);
}

/// The CXL trade: zero DMA log shipping, every record a single pool
/// store — and the paper substrates are the exact complement.
#[test]
fn cxl_ships_no_log() {
    let (cxl, _) = run(
        HwParams::cxl_shared(),
        NetConfig::full(),
        XenicConfig::full(),
        21,
        Wl::Smallbank,
    );
    assert!(cxl.committed > 0);
    assert_eq!(cxl.log_ship_writes, 0, "CXL must not DMA-ship log records");
    assert!(cxl.cxl_log_writes > 0, "CXL commits must write pool records");
    let (bf, _) = run(
        HwParams::off_path_bluefield(),
        NetConfig::full(),
        XenicConfig::full(),
        21,
        Wl::Smallbank,
    );
    assert!(bf.log_ship_writes > 0);
    assert_eq!(bf.cxl_log_writes, 0);
}

// ---------------------------------------------------------------------
// 4. Placement differential: cost moves, outcomes never.
// ---------------------------------------------------------------------

/// Same (seed, workload) under `nic_resident` vs `host_resident`, with
/// FaultPlan chaos, for all three replication backends: identical
/// commit set, digest-equal stores, identical event counts — and
/// measurably different latency. On the CXL substrate, `cxl_pool`
/// placement obeys the same contract.
#[test]
fn placement_differential_under_chaos() {
    let plan = FaultPlan::lossy(0.01, 0.005, 300);
    for backend in ReplBackend::ALL {
        let net = NetConfig::full().with_faults(plan.clone());
        let nic = XenicConfig {
            placement: Placement::nic_resident(),
            ..XenicConfig::with_backend(backend)
        };
        let host = XenicConfig {
            placement: Placement::host_resident(),
            ..XenicConfig::with_backend(backend)
        };
        let (r_nic, fp_nic) = run(
            HwParams::paper_testbed(),
            net.clone(),
            nic,
            33,
            Wl::Smallbank,
        );
        let (r_host, fp_host) = run(HwParams::paper_testbed(), net, host, 33, Wl::Smallbank);
        assert!(fp_nic.committed > 0, "{}: must commit work", backend.token());
        assert_eq!(
            fp_nic,
            fp_host,
            "{}: placement changed outcomes",
            backend.token()
        );
        assert!(
            r_host.p99_ns > r_nic.p99_ns,
            "{}: host placement must cost latency ({} <= {})",
            backend.token(),
            r_host.p99_ns,
            r_nic.p99_ns
        );
    }
    // CXL substrate: pool placement moves cost, not outcomes, either.
    let net = NetConfig::full().with_faults(plan);
    let (r_base, fp_base) = run(
        HwParams::cxl_shared(),
        net.clone(),
        XenicConfig::full(),
        33,
        Wl::Smallbank,
    );
    let (r_pool, fp_pool) = run(
        HwParams::cxl_shared(),
        net,
        XenicConfig::with_placement(Placement::cxl_pool()),
        33,
        Wl::Smallbank,
    );
    assert_eq!(fp_base, fp_pool, "cxl_pool placement changed outcomes");
    assert!(r_pool.p99_ns > r_base.p99_ns);
}
