//! Lane-count invariance: the multi-lane epoch-barrier scheduler
//! (DESIGN.md §16) must reproduce the serial scheduler bit for bit.
//!
//! Under `RngDiscipline::PerNode`, every event carries an intrinsic
//! `(owner node, per-node counter)` stamp and every RNG draw comes from a
//! per-node stream, so the whole simulation is a pure function of
//! `(seed, config)` regardless of how nodes are spread across worker
//! threads. These tests assert that for every workload × replication
//! backend × fault plan in the matrix, lanes ∈ {1, 2, 4} produce
//! identical commit stats, identical event counts, and identical
//! whole-cluster table digests — the same style of pin
//! `queue_differential.rs` uses for the event queue itself.

use xenic::harness::{cluster_digest, run_xenic_cluster, RunOptions};
use xenic::{ReplBackend, Workload, XenicConfig};
use xenic_hw::HwParams;
use xenic_net::{FaultPlan, NetConfig};
use xenic_sim::SimTime;
use xenic_workloads::{
    Retwis, RetwisConfig, Smallbank, SmallbankConfig, YcsbE, YcsbEConfig,
};

/// One run's complete fingerprint.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
struct Fingerprint {
    committed: u64,
    aborted: u64,
    digest: u64,
    processed: u64,
}

fn fingerprint(
    nodes: usize,
    net: NetConfig,
    cfg: XenicConfig,
    opts: &RunOptions,
    mk: impl Fn(usize) -> Box<dyn Workload>,
) -> Fingerprint {
    fingerprint_on(HwParams::paper_testbed(), nodes, net, cfg, opts, mk)
}

fn fingerprint_on(
    base: HwParams,
    nodes: usize,
    net: NetConfig,
    cfg: XenicConfig,
    opts: &RunOptions,
    mk: impl Fn(usize) -> Box<dyn Workload>,
) -> Fingerprint {
    let params = HwParams { nodes, ..base };
    let (r, cluster) = run_xenic_cluster(params, net, cfg, opts, mk);
    Fingerprint {
        committed: r.committed,
        aborted: r.aborted,
        digest: cluster_digest(&cluster),
        processed: cluster.rt.queue.processed(),
    }
}

fn quick_opts(seed: u64, lanes: usize) -> RunOptions {
    RunOptions {
        windows: 2,
        warmup: SimTime::from_us(100),
        measure: SimTime::from_us(250),
        seed,
        lanes,
    }
}

#[derive(Clone, Copy)]
enum Wl {
    Smallbank,
    Retwis,
    YcsbE,
}

fn mk_workload(wl: Wl, nodes: u32) -> impl Fn(usize) -> Box<dyn Workload> {
    move |_| match wl {
        Wl::Smallbank => Box::new(Smallbank::new(SmallbankConfig {
            accounts_per_node: 5_000,
            ..SmallbankConfig::sim(nodes)
        })),
        Wl::Retwis => Box::new(Retwis::new(RetwisConfig::sim(nodes))),
        Wl::YcsbE => Box::new(YcsbE::new(YcsbEConfig::sim(nodes))),
    }
}

/// The tentpole contract: Smallbank/Retwis/YCSB-E × every replication
/// backend × a lossy fault plan, at lanes ∈ {1, 2, 4}, all byte-identical.
#[test]
fn lane_count_invariance_matrix() {
    let nodes = 6usize;
    for wl in [Wl::Smallbank, Wl::Retwis, Wl::YcsbE] {
        for backend in ReplBackend::ALL {
            let net = NetConfig::full()
                .with_per_node_rng()
                .with_faults(FaultPlan::lossy(0.01, 0.01, 200));
            let cfg = XenicConfig::with_backend(backend);
            let run = |lanes: usize| {
                fingerprint(
                    nodes,
                    net.clone(),
                    cfg,
                    &quick_opts(11, lanes),
                    mk_workload(wl, nodes as u32),
                )
            };
            let serial = run(1);
            assert!(
                serial.committed > 0,
                "{}: matrix point must commit work",
                backend.token()
            );
            for lanes in [2usize, 4] {
                let par = run(lanes);
                assert_eq!(
                    par,
                    serial,
                    "backend {} lanes {} diverged from serial",
                    backend.token(),
                    lanes
                );
            }
        }
    }
}

/// Fault-free lane invariance on the plain full config (no plan active:
/// engines take the pre-fault code paths, which must be just as
/// lane-stable).
#[test]
fn lane_count_invariance_fault_free() {
    let nodes = 6usize;
    let net = NetConfig::full().with_per_node_rng();
    let run = |lanes: usize| {
        fingerprint(
            nodes,
            net.clone(),
            XenicConfig::full(),
            &quick_opts(3, lanes),
            mk_workload(Wl::Retwis, nodes as u32),
        )
    };
    let serial = run(1);
    assert!(serial.committed > 0);
    assert_eq!(run(2), serial);
    assert_eq!(run(4), serial);
}

/// Crash/restart fault plans cross the lane scheduler too: crash events
/// are stamped by (and routed to) the crashing node's lane, and every
/// `crashed[]` read in the runtime is owner-lane-local.
#[test]
fn lane_count_invariance_crash_restart() {
    use xenic_net::CrashEvent;
    let nodes = 6usize;
    let mut plan = FaultPlan::lossy(0.005, 0.0, 100);
    plan.crashes.push(CrashEvent {
        node: 2,
        at_ns: 150_000,
        restart_at_ns: Some(230_000),
    });
    let net = NetConfig::full().with_per_node_rng().with_faults(plan);
    let run = |lanes: usize| {
        fingerprint(
            nodes,
            net.clone(),
            XenicConfig::full(),
            &quick_opts(5, lanes),
            mk_workload(Wl::Smallbank, nodes as u32),
        )
    };
    let serial = run(1);
    assert!(serial.committed > 0);
    assert_eq!(run(2), serial);
    assert_eq!(run(4), serial);
}

/// The alternative substrates (DESIGN.md §17) cross the lane scheduler
/// too: BlueField's shifted PCIe/DMA latencies and CXL's local
/// pool-store log completions are all owner-stamped events, so under
/// `RngDiscipline::PerNode` every substrate must be fingerprint-
/// identical at lanes {1, 2, 4}.
#[test]
fn lane_count_invariance_substrates() {
    let nodes = 6usize;
    for base in [HwParams::off_path_bluefield(), HwParams::cxl_shared()] {
        let token = base.substrate.token();
        for wl in [Wl::Smallbank, Wl::Retwis] {
            let net = NetConfig::full()
                .with_per_node_rng()
                .with_faults(FaultPlan::lossy(0.01, 0.01, 200));
            let run = |lanes: usize| {
                fingerprint_on(
                    base.clone(),
                    nodes,
                    net.clone(),
                    XenicConfig::full(),
                    &quick_opts(11, lanes),
                    mk_workload(wl, nodes as u32),
                )
            };
            let serial = run(1);
            assert!(serial.committed > 0, "{token}: substrate point must commit work");
            for lanes in [2usize, 4] {
                let par = run(lanes);
                assert_eq!(par, serial, "{token} lanes {lanes} diverged from serial");
            }
        }
    }
}

/// Under the default `Global` RNG discipline the lane scheduler is not
/// eligible; `lanes: 4` must silently fall back to the serial scheduler
/// and still produce identical results.
#[test]
fn global_discipline_falls_back_to_serial() {
    let nodes = 6usize;
    let net = NetConfig::full();
    let run = |lanes: usize| {
        fingerprint(
            nodes,
            net.clone(),
            XenicConfig::full(),
            &quick_opts(7, lanes),
            mk_workload(Wl::Retwis, nodes as u32),
        )
    };
    assert_eq!(run(4), run(1));
}

/// The first run ever above the paper's 6-node testbed: a 64-node
/// Smallbank cluster completes deterministically on 4 lanes, matches the
/// serial scheduler, and matches this pinned digest (update it only for
/// a deliberate, understood simulation change).
#[test]
fn smallbank_64_nodes_smoke() {
    let nodes = 64usize;
    let net = NetConfig::full().with_per_node_rng();
    let opts = |lanes| RunOptions {
        windows: 2,
        warmup: SimTime::from_us(60),
        measure: SimTime::from_us(120),
        seed: 13,
        lanes,
    };
    let mk = |_: usize| -> Box<dyn Workload> {
        Box::new(Smallbank::new(SmallbankConfig {
            accounts_per_node: 1_000,
            ..SmallbankConfig::sim(nodes as u32)
        }))
    };
    let params = HwParams {
        nodes,
        ..HwParams::paper_testbed()
    };
    let (r4, c4) = run_xenic_cluster(params.clone(), net.clone(), XenicConfig::full(), &opts(4), mk);
    let (r1, c1) = run_xenic_cluster(params, net, XenicConfig::full(), &opts(1), mk);
    assert!(r4.committed > 0, "64-node run must commit work");
    assert_eq!(r4.committed, r1.committed);
    assert_eq!(r4.aborted, r1.aborted);
    assert_eq!(cluster_digest(&c4), cluster_digest(&c1));
    assert_eq!(c4.rt.queue.processed(), c1.rt.queue.processed());
    // Pinned 64-node fingerprint (committed, digest, processed).
    assert_eq!(
        (r4.committed, cluster_digest(&c4), c4.rt.queue.processed()),
        PIN_SMALLBANK_64,
        "64-node smallbank fingerprint diverged"
    );
}

/// Captured from the first verified run of `smallbank_64_nodes_smoke`.
const PIN_SMALLBANK_64: (u64, u64, u64) = (2202, 17434623591772061208, 225339);
