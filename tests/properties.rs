//! Property-based tests (proptest) over the core data structures and
//! simulator invariants.

use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use xenic_sim::{DetRng, EventQueue, Histogram, SimTime, Zipf};
use xenic_store::nic_index::{NicIndex, NicIndexConfig};
use xenic_store::robinhood::{InsertOutcome, RobinhoodConfig, RobinhoodTable};
use xenic_store::{BTree, ChainedTable, HopscotchTable, TxnId, Value, WritePayload};

/// An operation against a keyed store.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u8),
    Update(u64, u8),
    Remove(u64),
    Get(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space, any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_space, any::<u8>()).prop_map(|(k, v)| Op::Update(k, v)),
        (0..key_space).prop_map(Op::Remove),
        (0..key_space).prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Robinhood table agrees with a HashMap model under arbitrary
    /// operation sequences, including deletions (backward shift and
    /// overflow promotion paths).
    #[test]
    fn robinhood_matches_model(ops in proptest::collection::vec(op_strategy(300), 1..400)) {
        let mut table = RobinhoodTable::new(RobinhoodConfig {
            capacity: 512,
            displacement_limit: Some(6),
            segment_slots: 4,
            inline_cap: 64,
            slot_value_bytes: 8,
        });
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) | Op::Update(k, v) => {
                    let out = table.insert(k, Value::filled(4, v));
                    prop_assert_ne!(out, InsertOutcome::TableFull);
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    let t = table.remove(k);
                    let m = model.remove(&k).is_some();
                    prop_assert_eq!(t, m, "remove({}) diverged", k);
                }
                Op::Get(k) => {
                    let t = table.get(k).map(|(v, _)| v.bytes()[0]);
                    let m = model.get(&k).copied();
                    prop_assert_eq!(t, m, "get({}) diverged", k);
                }
            }
        }
        // Final sweep: every model key present with the right value.
        for (k, v) in &model {
            let got = table.get(*k).map(|(val, _)| val.bytes()[0]);
            prop_assert_eq!(got, Some(*v));
        }
        prop_assert_eq!(table.len() + table.overflow_len(), model.len());
    }

    /// DMA lookups with accurate hints find every present key in at most
    /// one table read plus one overflow read.
    #[test]
    fn robinhood_dma_lookup_bounded(keys in proptest::collection::hash_set(0u64..5_000, 50..400)) {
        let mut table = RobinhoodTable::new(RobinhoodConfig {
            capacity: 1024,
            displacement_limit: Some(8),
            segment_slots: 4,
            inline_cap: 64,
            slot_value_bytes: 8,
        });
        for k in &keys {
            table.insert(*k, Value::filled(8, (*k % 251) as u8));
        }
        for k in &keys {
            let seg = table.segment_of_key(*k);
            let tr = table.dma_lookup(*k, table.seg_max_disp(seg), 1);
            prop_assert!(tr.found.is_some(), "key {} not found", k);
            prop_assert!(tr.roundtrips <= 2, "key {} took {} roundtrips", k, tr.roundtrips);
            let (v, _) = tr.found.unwrap();
            prop_assert_eq!(v.bytes()[0], (*k % 251) as u8);
        }
    }

    /// Hopscotch and chained tables agree with a HashMap model for
    /// insert/get/update (their remote traces must find present keys).
    #[test]
    fn baseline_tables_match_model(ops in proptest::collection::vec(op_strategy(200), 1..200)) {
        let mut hop = HopscotchTable::new(512, 8, 8);
        let mut chain = ChainedTable::new(64, 4, 8);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) | Op::Update(k, v) => {
                    prop_assert!(hop.insert(k, Value::filled(4, v)));
                    chain.insert(k, Value::filled(4, v));
                    model.insert(k, v);
                }
                // These tables don't need deletion for the baselines.
                Op::Remove(_) => {}
                Op::Get(k) => {
                    let m = model.get(&k).copied();
                    prop_assert_eq!(hop.get(k).map(|(v, _)| v.bytes()[0]), m);
                    prop_assert_eq!(chain.get(k).map(|(v, _)| v.bytes()[0]), m);
                }
            }
        }
        for (k, v) in &model {
            prop_assert_eq!(hop.remote_lookup(*k).found.map(|(val, _)| val.bytes()[0]), Some(*v));
            prop_assert_eq!(chain.remote_lookup(*k).found.map(|(val, _)| val.bytes()[0]), Some(*v));
        }
    }

    /// The B+tree agrees with std's BTreeMap, including range queries and
    /// deletions.
    #[test]
    fn btree_matches_model(
        ops in proptest::collection::vec(op_strategy(500), 1..500),
        lo in 0u64..500,
        span in 0u64..200,
    ) {
        let mut tree = BTree::with_order(8);
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) | Op::Update(k, v) => {
                    tree.insert(k, v);
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(k).copied(), model.get(&k).copied());
                }
            }
        }
        let hi = lo + span;
        let got: Vec<(u64, u8)> = tree.range(lo, hi).into_iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(u64, u8)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want, "range [{}, {}] diverged", lo, hi);
    }

    /// NIC index locks are exclusive and lookups return the last
    /// installed value; pinned entries survive arbitrary eviction
    /// pressure.
    #[test]
    fn nic_index_lock_exclusivity(
        keys in proptest::collection::vec(0u64..64, 2..40),
        budget in 1usize..16,
    ) {
        let mut ix = NicIndex::new(NicIndexConfig {
            segments: 8,
            max_cached_values: budget,
            slack_k: 1,
        });
        let a = TxnId::new(0, 1);
        let b = TxnId::new(1, 1);
        let mut locked_by_a = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            let seg = (*k % 8) as usize;
            if i % 2 == 0 {
                if ix.try_lock(seg, *k, a) {
                    locked_by_a.push((seg, *k));
                }
            } else {
                ix.install(seg, *k, Value::filled(4, *k as u8), 1);
            }
        }
        // B can never steal A's locks.
        for (seg, k) in &locked_by_a {
            prop_assert!(!ix.try_lock(*seg, *k, b), "lock stolen for {}", k);
        }
        // Unlocks release exactly A's locks.
        for (seg, k) in &locked_by_a {
            ix.unlock(*seg, *k, a);
            prop_assert!(ix.try_lock(*seg, *k, b));
            ix.unlock(*seg, *k, b);
        }
        // Locked (or pinned) records are exempt from eviction, so the
        // budget may be exceeded by at most the number of unevictable
        // entries at install time.
        prop_assert!(
            ix.cached_values() <= budget + locked_by_a.len(),
            "cached {} vs budget {} + locked {}",
            ix.cached_values(),
            budget,
            locked_by_a.len()
        );
    }

    /// WritePayload deltas compose: applying AddI64 deltas one at a time
    /// equals adding their sum, regardless of order.
    #[test]
    fn delta_payloads_compose(deltas in proptest::collection::vec(-1000i64..1000, 1..30)) {
        let mut v = Value::from_bytes(&0i64.to_le_bytes());
        for d in &deltas {
            v = WritePayload::AddI64(*d).apply(&v);
        }
        let total: i64 = deltas.iter().sum();
        let got = i64::from_le_bytes(v.bytes()[..8].try_into().unwrap());
        prop_assert_eq!(got, total);
    }

    /// The event queue pops in nondecreasing time order with FIFO ties,
    /// for arbitrary interleavings of pushes and pops.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_ns(*t), (i, *t));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (seq, t))) = q.pop() {
            prop_assert_eq!(at.as_ns(), t);
            if let Some((lt, lseq)) = last {
                prop_assert!(t > lt || (t == lt && seq > lseq), "order violated");
            }
            last = Some((t, seq));
        }
    }

    /// Histogram quantiles are monotone in q and bounded by min/max.
    #[test]
    fn histogram_quantiles_sane(samples in proptest::collection::vec(1u64..10_000_000, 1..500)) {
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        let mn = *samples.iter().min().unwrap();
        let mx = *samples.iter().max().unwrap();
        let mut last = 0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            prop_assert!(q >= last, "quantiles must be monotone");
            prop_assert!(q >= mn && q <= mx, "quantile {} outside [{}, {}]", q, mn, mx);
            last = q;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Zipf samples stay in range and the head outweighs the tail.
    #[test]
    fn zipf_in_range(n in 10usize..5_000, alpha in 0.0f64..1.2, seed in any::<u64>()) {
        let z = Zipf::new(n, alpha);
        let mut rng = DetRng::new(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After interleaved inserts and deletes, hint-guided DMA lookups
    /// still find every surviving key (exercising overflow promotion and
    /// backward shift against the hint machinery).
    #[test]
    fn robinhood_hints_survive_deletions(
        keys in proptest::collection::hash_set(0u64..2_000, 100..300),
        delete_every in 2usize..5,
    ) {
        let mut table = RobinhoodTable::new(RobinhoodConfig {
            capacity: 512,
            displacement_limit: Some(6),
            segment_slots: 4,
            inline_cap: 64,
            slot_value_bytes: 8,
        });
        let keys: Vec<u64> = keys.into_iter().collect();
        for k in &keys {
            table.insert(*k, Value::filled(8, (*k % 251) as u8));
        }
        let mut surviving = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            if i % delete_every == 0 {
                prop_assert!(table.remove(*k));
            } else {
                surviving.push(*k);
            }
        }
        for k in &surviving {
            let seg = table.segment_of_key(*k);
            let tr = table.dma_lookup(*k, table.seg_max_disp(seg), 1);
            prop_assert!(tr.found.is_some(), "key {} lost after deletions", k);
            prop_assert!(tr.roundtrips <= 2);
        }
    }

    /// The deterministic RNG's labeled streams are insensitive to parent
    /// consumption, and NURand stays within its bounds for arbitrary
    /// parameters.
    #[test]
    fn rng_streams_and_nurand(seed in any::<u64>(), a in 1u64..10_000, span in 1u64..100_000) {
        let root = DetRng::new(seed);
        let mut s1 = root.stream("x");
        let mut parent = DetRng::new(seed);
        parent.u64();
        parent.u64();
        let mut s2 = parent.stream("x");
        for _ in 0..8 {
            prop_assert_eq!(s1.u64(), s2.u64());
        }
        let mut r = DetRng::new(seed);
        for _ in 0..50 {
            let v = r.nurand(a, 10, 10 + span);
            prop_assert!((10..=10 + span).contains(&v));
        }
    }
}
