//! Property-based tests over the core data structures and simulator
//! invariants.
//!
//! These were originally written against an external property-testing
//! framework; they are now driven by the repo's own [`DetRng`] so the
//! test suite builds hermetically. Each property runs `CASES` randomized
//! trials with seeds derived from a fixed master seed — fully
//! deterministic, so a failure is reproducible by its printed case seed.

use std::collections::{BTreeMap, HashMap, HashSet};
use xenic::api::Workload;
use xenic::harness::{run_xenic, RunOptions};
use xenic::XenicConfig;
use xenic_hw::HwParams;
use xenic_net::{FaultPlan, NetConfig};
use xenic_sim::{DetRng, EventQueue, Histogram, SimTime, Zipf};
use xenic_store::nic_index::{NicIndex, NicIndexConfig};
use xenic_store::robinhood::{InsertOutcome, RobinhoodConfig, RobinhoodTable};
use xenic_store::{BTree, ChainedTable, HopscotchTable, TxnId, Value, WritePayload};

/// Number of randomized trials per property.
const CASES: u64 = 64;

/// Runs `body` for `cases` seeds derived from the property name, so each
/// property owns an independent, label-stable sequence of cases.
fn for_cases(name: &str, cases: u64, mut body: impl FnMut(u64, &mut DetRng)) {
    let master = DetRng::new(0xbadc_0ffe).stream(name);
    for case in 0..cases {
        let mut rng = master.stream(&format!("case-{case}"));
        body(case, &mut rng);
    }
}

/// An operation against a keyed store.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u8),
    Update(u64, u8),
    Remove(u64),
    Get(u64),
}

fn gen_ops(rng: &mut DetRng, key_space: u64, max_len: u64) -> Vec<Op> {
    let len = rng.range_inclusive(1, max_len);
    (0..len)
        .map(|_| {
            let k = rng.below(key_space);
            match rng.below(4) {
                0 => Op::Insert(k, rng.below(256) as u8),
                1 => Op::Update(k, rng.below(256) as u8),
                2 => Op::Remove(k),
                _ => Op::Get(k),
            }
        })
        .collect()
}

fn gen_key_set(rng: &mut DetRng, key_space: u64, lo: usize, hi: usize) -> Vec<u64> {
    let want = rng.range_inclusive(lo as u64, hi as u64) as usize;
    let mut set = HashSet::new();
    while set.len() < want {
        set.insert(rng.below(key_space));
    }
    let mut keys: Vec<u64> = set.into_iter().collect();
    keys.sort_unstable();
    rng.shuffle(&mut keys);
    keys
}

/// The Robinhood table agrees with a HashMap model under arbitrary
/// operation sequences, including deletions (backward shift and
/// overflow promotion paths).
#[test]
fn robinhood_matches_model() {
    for_cases("robinhood_matches_model", CASES, |case, rng| {
        let ops = gen_ops(rng, 300, 400);
        let mut table = RobinhoodTable::new(RobinhoodConfig {
            capacity: 512,
            displacement_limit: Some(6),
            segment_slots: 4,
            inline_cap: 64,
            slot_value_bytes: 8,
        });
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) | Op::Update(k, v) => {
                    let out = table.insert(k, Value::filled(4, v));
                    assert_ne!(out, InsertOutcome::TableFull, "case {case}");
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    let t = table.remove(k);
                    let m = model.remove(&k).is_some();
                    assert_eq!(t, m, "case {case}: remove({k}) diverged");
                }
                Op::Get(k) => {
                    let t = table.get(k).map(|(v, _)| v.bytes()[0]);
                    let m = model.get(&k).copied();
                    assert_eq!(t, m, "case {case}: get({k}) diverged");
                }
            }
        }
        // Final sweep: every model key present with the right value.
        for (k, v) in &model {
            let got = table.get(*k).map(|(val, _)| val.bytes()[0]);
            assert_eq!(got, Some(*v), "case {case}");
        }
        assert_eq!(table.len() + table.overflow_len(), model.len(), "case {case}");
    });
}

/// DMA lookups with accurate hints find every present key in at most
/// one table read plus one overflow read.
#[test]
fn robinhood_dma_lookup_bounded() {
    for_cases("robinhood_dma_lookup_bounded", CASES, |case, rng| {
        let keys = gen_key_set(rng, 5_000, 50, 400);
        let mut table = RobinhoodTable::new(RobinhoodConfig {
            capacity: 1024,
            displacement_limit: Some(8),
            segment_slots: 4,
            inline_cap: 64,
            slot_value_bytes: 8,
        });
        for k in &keys {
            table.insert(*k, Value::filled(8, (*k % 251) as u8));
        }
        for k in &keys {
            let seg = table.segment_of_key(*k);
            let tr = table.dma_lookup(*k, table.seg_max_disp(seg), 1);
            assert!(tr.found.is_some(), "case {case}: key {k} not found");
            assert!(
                tr.roundtrips <= 2,
                "case {case}: key {k} took {} roundtrips",
                tr.roundtrips
            );
            let (v, _) = tr.found.unwrap();
            assert_eq!(v.bytes()[0], (*k % 251) as u8, "case {case}");
        }
    });
}

/// Hopscotch and chained tables agree with a HashMap model for
/// insert/get/update (their remote traces must find present keys).
#[test]
fn baseline_tables_match_model() {
    for_cases("baseline_tables_match_model", CASES, |case, rng| {
        let ops = gen_ops(rng, 200, 200);
        let mut hop = HopscotchTable::new(512, 8, 8);
        let mut chain = ChainedTable::new(64, 4, 8);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) | Op::Update(k, v) => {
                    assert!(hop.insert(k, Value::filled(4, v)), "case {case}");
                    chain.insert(k, Value::filled(4, v));
                    model.insert(k, v);
                }
                // These tables don't need deletion for the baselines.
                Op::Remove(_) => {}
                Op::Get(k) => {
                    let m = model.get(&k).copied();
                    assert_eq!(hop.get(k).map(|(v, _)| v.bytes()[0]), m, "case {case}");
                    assert_eq!(chain.get(k).map(|(v, _)| v.bytes()[0]), m, "case {case}");
                }
            }
        }
        for (k, v) in &model {
            assert_eq!(
                hop.remote_lookup(*k).found.map(|(val, _)| val.bytes()[0]),
                Some(*v),
                "case {case}"
            );
            assert_eq!(
                chain.remote_lookup(*k).found.map(|(val, _)| val.bytes()[0]),
                Some(*v),
                "case {case}"
            );
        }
    });
}

/// The B+tree agrees with std's BTreeMap, including range queries and
/// deletions.
#[test]
fn btree_matches_model() {
    for_cases("btree_matches_model", CASES, |case, rng| {
        let ops = gen_ops(rng, 500, 500);
        let lo = rng.below(500);
        let span = rng.below(200);
        let mut tree = BTree::with_order(8);
        let mut model: BTreeMap<u64, u8> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) | Op::Update(k, v) => {
                    tree.insert(k, v);
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    assert_eq!(tree.remove(k), model.remove(&k), "case {case}");
                }
                Op::Get(k) => {
                    assert_eq!(tree.get(k).copied(), model.get(&k).copied(), "case {case}");
                }
            }
        }
        let hi = lo + span;
        let got: Vec<(u64, u8)> = tree.range(lo, hi).into_iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(u64, u8)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want, "case {case}: range [{lo}, {hi}] diverged");
    });
}

/// NIC index locks are exclusive and lookups return the last installed
/// value; pinned entries survive arbitrary eviction pressure.
#[test]
fn nic_index_lock_exclusivity() {
    for_cases("nic_index_lock_exclusivity", CASES, |case, rng| {
        let n_keys = rng.range_inclusive(2, 39);
        let keys: Vec<u64> = (0..n_keys).map(|_| rng.below(64)).collect();
        let budget = rng.range_inclusive(1, 15) as usize;
        let mut ix = NicIndex::new(NicIndexConfig {
            segments: 8,
            max_cached_values: budget,
            slack_k: 1,
        });
        let a = TxnId::new(0, 1);
        let b = TxnId::new(1, 1);
        let mut locked_by_a = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            let seg = (*k % 8) as usize;
            if i % 2 == 0 {
                if ix.try_lock(seg, *k, a) {
                    locked_by_a.push((seg, *k));
                }
            } else {
                ix.install(seg, *k, Value::filled(4, *k as u8), 1);
            }
        }
        // B can never steal A's locks.
        for (seg, k) in &locked_by_a {
            assert!(!ix.try_lock(*seg, *k, b), "case {case}: lock stolen for {k}");
        }
        // Unlocks release exactly A's locks.
        for (seg, k) in &locked_by_a {
            ix.unlock(*seg, *k, a);
            assert!(ix.try_lock(*seg, *k, b), "case {case}");
            ix.unlock(*seg, *k, b);
        }
        // Locked (or pinned) records are exempt from eviction, so the
        // budget may be exceeded by at most the number of unevictable
        // entries at install time.
        assert!(
            ix.cached_values() <= budget + locked_by_a.len(),
            "case {case}: cached {} vs budget {} + locked {}",
            ix.cached_values(),
            budget,
            locked_by_a.len()
        );
    });
}

/// WritePayload deltas compose: applying AddI64 deltas one at a time
/// equals adding their sum, regardless of order.
#[test]
fn delta_payloads_compose() {
    for_cases("delta_payloads_compose", CASES, |case, rng| {
        let n = rng.range_inclusive(1, 29);
        let deltas: Vec<i64> = (0..n).map(|_| rng.below(2000) as i64 - 1000).collect();
        let mut v = Value::from_bytes(&0i64.to_le_bytes());
        for d in &deltas {
            v = WritePayload::AddI64(*d).apply(&v);
        }
        let total: i64 = deltas.iter().sum();
        let got = i64::from_le_bytes(v.bytes()[..8].try_into().unwrap());
        assert_eq!(got, total, "case {case}");
    });
}

/// The event queue pops in nondecreasing time order with FIFO ties, for
/// arbitrary interleavings of pushes and pops.
#[test]
fn event_queue_total_order() {
    for_cases("event_queue_total_order", CASES, |case, rng| {
        let n = rng.range_inclusive(1, 199);
        let times: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_ns(*t), (i, *t));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (seq, t))) = q.pop() {
            assert_eq!(at.as_ns(), t, "case {case}");
            if let Some((lt, lseq)) = last {
                assert!(
                    t > lt || (t == lt && seq > lseq),
                    "case {case}: order violated"
                );
            }
            last = Some((t, seq));
        }
    });
}

/// Histogram quantiles are monotone in q and bounded by min/max.
#[test]
fn histogram_quantiles_sane() {
    for_cases("histogram_quantiles_sane", CASES, |case, rng| {
        let n = rng.range_inclusive(1, 499);
        let samples: Vec<u64> = (0..n).map(|_| rng.range_inclusive(1, 9_999_999)).collect();
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        let mn = *samples.iter().min().unwrap();
        let mx = *samples.iter().max().unwrap();
        let mut last = 0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            assert!(q >= last, "case {case}: quantiles must be monotone");
            assert!(
                q >= mn && q <= mx,
                "case {case}: quantile {q} outside [{mn}, {mx}]"
            );
            last = q;
        }
        assert_eq!(h.count(), samples.len() as u64, "case {case}");
    });
}

/// Zipf samples stay in range and the head outweighs the tail.
#[test]
fn zipf_in_range() {
    for_cases("zipf_in_range", CASES, |case, rng| {
        let n = rng.range_inclusive(10, 4_999) as usize;
        let alpha = rng.f64() * 1.2;
        let mut draw = rng.stream("draws");
        let z = Zipf::new(n, alpha);
        for _ in 0..200 {
            assert!(z.sample(&mut draw) < n, "case {case}");
        }
    });
}

/// After interleaved inserts and deletes, hint-guided DMA lookups still
/// find every surviving key (exercising overflow promotion and backward
/// shift against the hint machinery).
#[test]
fn robinhood_hints_survive_deletions() {
    for_cases("robinhood_hints_survive_deletions", 32, |case, rng| {
        let keys = gen_key_set(rng, 2_000, 100, 300);
        let delete_every = rng.range_inclusive(2, 4) as usize;
        let mut table = RobinhoodTable::new(RobinhoodConfig {
            capacity: 512,
            displacement_limit: Some(6),
            segment_slots: 4,
            inline_cap: 64,
            slot_value_bytes: 8,
        });
        for k in &keys {
            table.insert(*k, Value::filled(8, (*k % 251) as u8));
        }
        let mut surviving = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            if i % delete_every == 0 {
                assert!(table.remove(*k), "case {case}");
            } else {
                surviving.push(*k);
            }
        }
        for k in &surviving {
            let seg = table.segment_of_key(*k);
            let tr = table.dma_lookup(*k, table.seg_max_disp(seg), 1);
            assert!(tr.found.is_some(), "case {case}: key {k} lost after deletions");
            assert!(tr.roundtrips <= 2, "case {case}");
        }
    });
}

/// A quick whole-stack run under the given net config, reduced to a
/// comparable fingerprint.
fn quick_run(net: NetConfig, seed: u64) -> (u64, u64, u64) {
    let opts = RunOptions {
        windows: 4,
        warmup: SimTime::from_us(500),
        measure: SimTime::from_ms(1),
        seed,
        lanes: 1,
    };
    let mk = |_: usize| -> Box<dyn Workload> {
        Box::new(xenic_workloads::Smallbank::new(
            xenic_workloads::SmallbankConfig {
                accounts_per_node: 10_000,
                ..xenic_workloads::SmallbankConfig::sim(6)
            },
        ))
    };
    let r = run_xenic(
        HwParams::paper_testbed(),
        net,
        XenicConfig::full(),
        &opts,
        mk,
    );
    (r.committed, r.aborted, r.p50_ns)
}

/// Fault-injected runs are deterministic: the same (seed, plan) pair
/// replays the same universe — identical commit and abort counts and an
/// identical latency distribution — for arbitrary fault rates.
#[test]
fn fault_injected_runs_are_deterministic() {
    for_cases("fault_injected_runs_are_deterministic", 3, |case, rng| {
        let seed = rng.below(1 << 20);
        let plan = FaultPlan::lossy(
            rng.f64() * 0.03,
            rng.f64() * 0.03,
            rng.below(4_000),
        );
        let net = || NetConfig::full().with_faults(plan.clone());
        let a = quick_run(net(), seed);
        let b = quick_run(net(), seed);
        assert_eq!(a, b, "case {case}: fault run diverged under replay");
        assert!(a.0 > 0, "case {case}: nothing committed");
    });
}

/// A fault plan with every knob at zero is inert: it must reproduce the
/// fault-free run *exactly*, proving the fault layer adds no code-path or
/// RNG perturbation when disabled.
#[test]
fn zero_rate_fault_plan_reproduces_fault_free_run() {
    for seed in [7u64, 42] {
        let plain = quick_run(NetConfig::full(), seed);
        let zeroed = quick_run(
            NetConfig::full().with_faults(FaultPlan::lossy(0.0, 0.0, 0)),
            seed,
        );
        assert_eq!(plain, zeroed, "seed {seed}: inert plan perturbed the run");
    }
}

/// FNV digest over every shard's final host table (keys visited in
/// sorted order; values and versions folded in) — the whole-cluster
/// state fingerprint used by the determinism pinning tests.
fn table_digest(cluster: &xenic_net::Cluster<xenic::engine::Xenic>) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for st in &cluster.states {
        let mut keys: Vec<u64> = st.host_table.iter_keys().map(|(k, _)| k).collect();
        keys.sort_unstable();
        for k in keys {
            let (v, ver) = st.host_table.get(k).expect("key present");
            for b in v.bytes() {
                digest = (digest ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
            }
            digest = (digest ^ ver).wrapping_mul(0x100_0000_01b3);
        }
    }
    digest
}

/// The hot-path memory refactor (shared specs/values, inline small-sets,
/// slab txn contexts — DESIGN.md §13) must be *bit-invariant*: these
/// exact commit/abort counts, whole-cluster table digests, and
/// event-queue `processed` totals were captured before the refactor and
/// pinned. Any divergence means an observable reordering (map iteration,
/// timer arming, send order) leaked into the simulation.
#[test]
fn hot_path_pinned_digests() {
    use xenic::harness::run_xenic_cluster;

    struct Pin {
        name: &'static str,
        plan: Option<FaultPlan>,
        smallbank: bool,
        seed: u64,
        expect: (u64, u64, u64, u64), // (committed, aborted, digest, processed)
    }
    let pins = [
        Pin {
            name: "retwis_fault_free",
            plan: None,
            smallbank: false,
            seed: 7,
            expect: PIN_RETWIS_FAULT_FREE,
        },
        Pin {
            name: "retwis_lossy",
            plan: Some(FaultPlan::lossy(0.01, 0.01, 200)),
            smallbank: false,
            seed: 7,
            expect: PIN_RETWIS_LOSSY,
        },
        Pin {
            name: "smallbank_lossy",
            plan: Some(FaultPlan::lossy(0.02, 0.01, 500)),
            smallbank: true,
            seed: 9,
            expect: PIN_SMALLBANK_LOSSY,
        },
    ];
    for pin in pins {
        let opts = RunOptions {
            windows: 4,
            warmup: SimTime::from_us(200),
            measure: SimTime::from_us(500),
            seed: pin.seed,
            lanes: 1,
        };
        let net = match &pin.plan {
            Some(p) => NetConfig::full().with_faults(p.clone()),
            None => NetConfig::full(),
        };
        let mk = |_: usize| -> Box<dyn Workload> {
            if pin.smallbank {
                Box::new(xenic_workloads::Smallbank::new(
                    xenic_workloads::SmallbankConfig {
                        accounts_per_node: 10_000,
                        ..xenic_workloads::SmallbankConfig::sim(6)
                    },
                ))
            } else {
                Box::new(xenic_workloads::Retwis::new(
                    xenic_workloads::RetwisConfig::sim(6),
                ))
            }
        };
        let (r, cluster) = run_xenic_cluster(
            HwParams::paper_testbed(),
            net,
            XenicConfig::full(),
            &opts,
            mk,
        );
        let got = (
            r.committed,
            r.aborted,
            table_digest(&cluster),
            cluster.rt.queue.processed(),
        );
        assert_eq!(
            got, pin.expect,
            "{}: run fingerprint diverged from the pre-refactor pin",
            pin.name
        );
    }
}

/// Scan-heavy runs must be deterministic under sweep parallelism: each
/// point is an independent seeded cluster, so running the same YCSB-E
/// points serially and through `par_points` worker threads (the `--jobs
/// N` machinery every sweep binary uses) must produce byte-identical
/// commit counts and whole-cluster table digests. Range walks are the
/// newest hot path — any thread-sensitive state (shared caches, iteration
/// order) would show up here first.
#[test]
fn scan_cluster_digests_are_identical_serial_vs_parallel_jobs() {
    use xenic::harness::run_xenic_cluster;
    use xenic_bench::par_points;
    use xenic_workloads::{YcsbE, YcsbEConfig};

    let cfg = YcsbEConfig {
        keys_per_node: 2_000,
        nodes: 6,
        scan_pct: 90,
        max_scan_len: 40,
        double_scan_pct: 20,
        value_bytes: 32,
    };
    let run = |seed: &u64| {
        let opts = RunOptions {
            windows: 4,
            warmup: SimTime::from_us(200),
            measure: SimTime::from_ms(1),
            seed: *seed,
            lanes: 1,
        };
        let (r, cluster) = run_xenic_cluster(
            HwParams::paper_testbed(),
            NetConfig::full(),
            XenicConfig::full(),
            &opts,
            move |_| Box::new(YcsbE::new(cfg)) as Box<dyn Workload>,
        );
        (r.committed, r.aborted, table_digest(&cluster))
    };
    let seeds = [3u64, 4, 5, 6];
    let serial = par_points(1, &seeds, run);
    let parallel = par_points(4, &seeds, run);
    assert_eq!(serial, parallel, "--jobs must not perturb scan runs");
    for (seed, (committed, _, _)) in seeds.iter().zip(&serial) {
        assert!(*committed > 50, "seed {seed}: committed {committed}");
    }
}

/// Pre-refactor pinned fingerprints for [`hot_path_pinned_digests`]:
/// (committed, aborted, whole-cluster table digest, events processed).
const PIN_RETWIS_FAULT_FREE: (u64, u64, u64, u64) =
    (1612, 1, 12097254398695214283, 227362);
const PIN_RETWIS_LOSSY: (u64, u64, u64, u64) =
    (924, 2, 6914849258777022703, 155977);
const PIN_SMALLBANK_LOSSY: (u64, u64, u64, u64) =
    (1076, 23, 14308353731268317752, 105268);

/// Deterministic increment workload for the replication-backend
/// equivalence tests: each node's first `budget` transactions increment
/// a key chosen by a fixed (rng-free) formula, everything after is
/// read-only padding. Because every increment commits exactly once and
/// `AddI64` commutes, the final table state — values *and* versions — is
/// a pure function of the issued set, independent of schedule, so runs
/// of different replication backends must land on identical digests.
struct BudgetWl {
    issued: u64,
    budget: u64,
    keys: u64,
}

impl Workload for BudgetWl {
    fn next_txn(&mut self, node: usize, rng: &mut DetRng) -> xenic::TxnSpec {
        use xenic::{make_key, ShipMode, TxnSpec, UpdateOp};
        let home = node as u32;
        let base = TxnSpec {
            exec_host_ns: 150,
            exec_nic_ns: 480,
            ship: ShipMode::Nic,
            ..Default::default()
        };
        if self.issued < self.budget {
            let i = self.issued;
            self.issued += 1;
            let shard = ((node as u64 + 1 + i) % 6) as u32;
            TxnSpec {
                reads: vec![make_key(home, i % self.keys)],
                updates: vec![(make_key(shard, (i * 7) % self.keys), UpdateOp::AddI64(1))],
                ..base
            }
        } else {
            TxnSpec {
                reads: vec![make_key(home, rng.below(self.keys))],
                ..base
            }
        }
    }

    fn value_bytes(&self) -> u32 {
        16
    }

    fn preload(&self, shard: u32) -> Vec<(u64, Value)> {
        (0..self.keys)
            .map(|i| (xenic::make_key(shard, i), Value::from_bytes(&0i64.to_le_bytes())))
            .collect()
    }
}

/// Runs one replication backend over the budgeted workload, drains every
/// in-flight transaction and retransmission, and fingerprints the final
/// cluster: the whole-table digest plus the exact sum of all counters.
fn backend_run(
    backend: xenic::ReplBackend,
    seed: u64,
    plan: Option<FaultPlan>,
    budget: u64,
) -> (u64, i64, u64) {
    use xenic::harness::run_xenic_cluster;
    let opts = RunOptions {
        windows: 2,
        warmup: SimTime::from_us(200),
        measure: SimTime::from_ms(2),
        seed,
        lanes: 1,
    };
    let net = match &plan {
        Some(p) => NetConfig::full().with_faults(p.clone()),
        None => NetConfig::full(),
    };
    let (r, mut cluster) = run_xenic_cluster(
        HwParams::paper_testbed(),
        net,
        XenicConfig::with_backend(backend),
        &opts,
        move |_| {
            Box::new(BudgetWl {
                issued: 0,
                budget,
                keys: 24,
            }) as Box<dyn Workload>
        },
    );
    for st in &mut cluster.states {
        st.draining = true;
    }
    cluster.run_until(SimTime::from_ms(200));
    let mut sum = 0i64;
    for st in &cluster.states {
        for (k, _) in st.host_table.iter_keys() {
            let (v, _) = st.host_table.get(k).expect("key present");
            sum += i64::from_le_bytes(v.bytes()[..8].try_into().unwrap());
        }
    }
    (table_digest(&cluster), sum, r.committed)
}

/// Cross-backend equivalence (DESIGN.md §15): on fault-free runs of the
/// same (seed, workload), all three replication backends — DMA log
/// shipping, Raft-style leader commit, and Hermes-style invalidation —
/// must install *identical* whole-cluster state: same values, same
/// versions, same digest. Their schedules differ wildly (multi-hop vs
/// leader relay vs invalidation broadcast), so this pins down exactly
/// what the Replication trait owes the engine: the Log phase must not
/// change what a committed transaction installs, only how it survives.
#[test]
fn replication_backends_install_identical_state() {
    use xenic::ReplBackend;
    const BUDGET: u64 = 40;
    for seed in [11u64, 12] {
        let fingerprints: Vec<(u64, i64)> = ReplBackend::ALL
            .iter()
            .map(|&b| {
                let (digest, sum, _) = backend_run(b, seed, None, BUDGET);
                (digest, sum)
            })
            .collect();
        for (b, fp) in ReplBackend::ALL.iter().zip(&fingerprints) {
            assert_eq!(
                fp.1,
                (BUDGET * 6) as i64,
                "seed {seed} {b:?}: not every budgeted increment committed"
            );
            assert_eq!(
                *fp, fingerprints[0],
                "seed {seed} {b:?}: final cluster state diverged from {:?}",
                ReplBackend::ALL[0]
            );
        }
    }
}

/// Every replication backend's *lossy* run replays bit for bit: the same
/// (seed, plan, backend) triple must reproduce identical commit/abort
/// counts, whole-cluster digests, and event totals. Retransmission,
/// election, and invalidation schedules all draw from the deterministic
/// RNG tree, so any divergence means hidden nondeterminism in a backend.
#[test]
fn backend_lossy_runs_replay_bit_for_bit() {
    use xenic::harness::run_xenic_cluster;
    use xenic::ReplBackend;
    for &backend in ReplBackend::ALL.iter() {
        let run = || {
            let opts = RunOptions {
                windows: 4,
                warmup: SimTime::from_us(200),
                measure: SimTime::from_ms(1),
                seed: 21,
                lanes: 1,
            };
            let plan = FaultPlan::lossy(0.02, 0.01, 1_000);
            let (r, cluster) = run_xenic_cluster(
                HwParams::paper_testbed(),
                NetConfig::full().with_faults(plan),
                XenicConfig::with_backend(backend),
                &opts,
                move |_| {
                    Box::new(BudgetWl {
                        issued: 0,
                        budget: u64::MAX,
                        keys: 24,
                    }) as Box<dyn Workload>
                },
            );
            (
                r.committed,
                r.aborted,
                table_digest(&cluster),
                cluster.rt.queue.processed(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{backend:?}: lossy run diverged under replay");
        assert!(a.0 > 100, "{backend:?}: committed only {}", a.0);
    }
}

/// The serializability history recorder must be a pure observer:
/// attaching it changes no measured bit of a run. Commit and abort
/// counts, the full latency fingerprint, and an FNV digest over every
/// shard's final table (values and versions) are identical with
/// recording on and off — fault-free and under lossy fault plans.
#[test]
fn history_recorder_is_a_pure_observer() {
    use xenic::harness::run_xenic_cluster_with;
    use xenic_check::HistoryRecorder;

    for_cases("history_recorder_is_a_pure_observer", 4, |case, rng| {
        let seed = rng.below(1 << 20);
        let plan = if case % 2 == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::lossy(rng.f64() * 0.03, rng.f64() * 0.02, rng.below(2_000))
        };
        let opts = RunOptions {
            windows: 4,
            warmup: SimTime::from_us(500),
            measure: SimTime::from_ms(1),
            seed,
            lanes: 1,
        };
        let mk = |_: usize| -> Box<dyn Workload> {
            Box::new(xenic_workloads::Smallbank::new(
                xenic_workloads::SmallbankConfig {
                    accounts_per_node: 10_000,
                    ..xenic_workloads::SmallbankConfig::sim(6)
                },
            ))
        };
        let run = |record: bool| {
            let recorder = HistoryRecorder::new();
            let hook = recorder.clone();
            let (r, cluster) = run_xenic_cluster_with(
                HwParams::paper_testbed(),
                NetConfig::full().with_faults(plan.clone()),
                XenicConfig::full(),
                &opts,
                mk,
                move |cluster| {
                    if record {
                        for st in &mut cluster.states {
                            st.set_recorder(hook.clone());
                        }
                    }
                },
            );
            let history = recorder.snapshot();
            (
                (r.committed, r.aborted, r.p50_ns, r.p99_ns, r.mean_ns.to_bits()),
                table_digest(&cluster),
                history,
            )
        };
        let (fp_off, digest_off, history_off) = run(false);
        let (fp_on, digest_on, history_on) = run(true);
        assert_eq!(fp_off, fp_on, "case {case}: recorder perturbed the metrics");
        assert_eq!(digest_off, digest_on, "case {case}: recorder perturbed table state");
        assert!(fp_on.0 > 0, "case {case}: nothing committed");
        assert!(history_off.is_empty(), "case {case}: detached recorder saw commits");
        // The recorder sees every commit from t=0, a superset of the
        // measurement-window count.
        assert!(
            history_on.committed_count() as u64 >= fp_on.0,
            "case {case}: recorder saw {} < measured {}",
            history_on.committed_count(),
            fp_on.0
        );
    });
}

/// The deterministic RNG's labeled streams are insensitive to parent
/// consumption, and NURand stays within its bounds for arbitrary
/// parameters.
#[test]
fn rng_streams_and_nurand() {
    for_cases("rng_streams_and_nurand", 32, |case, rng| {
        let seed = rng.u64();
        let a = rng.range_inclusive(1, 9_999);
        let span = rng.range_inclusive(1, 99_999);
        let root = DetRng::new(seed);
        let mut s1 = root.stream("x");
        let mut parent = DetRng::new(seed);
        parent.u64();
        parent.u64();
        let mut s2 = parent.stream("x");
        for _ in 0..8 {
            assert_eq!(s1.u64(), s2.u64(), "case {case}");
        }
        let mut r = DetRng::new(seed);
        for _ in 0..50 {
            let v = r.nurand(a, 10, 10 + span);
            assert!((10..=10 + span).contains(&v), "case {case}");
        }
    });
}

/// Parallel sweeps are a pure scheduling change: running the same sweep
/// points through [`xenic_bench::par_points`] with 8 workers must yield
/// output *bitwise identical* to the serial (`--jobs 1`) path — each
/// point is an independently seeded simulation, and the merge is by input
/// index, so formatted tables and CSV bytes cannot differ.
#[test]
fn parallel_sweep_output_is_bitwise_identical_to_serial() {
    use xenic_bench::{curves_csv, par_points, run_system, CurvePoint, System};

    let systems = [System::Xenic, System::DrtmH, System::Fasst];
    let windows = [4usize, 16];
    let points: Vec<(System, usize)> = systems
        .iter()
        .flat_map(|&s| windows.iter().map(move |&w| (s, w)))
        .collect();
    let mk = |_: usize| -> Box<dyn Workload> {
        Box::new(xenic_workloads::Smallbank::new(
            xenic_workloads::SmallbankConfig {
                accounts_per_node: 10_000,
                ..xenic_workloads::SmallbankConfig::sim(6)
            },
        ))
    };
    let run = |&(sys, w): &(System, usize)| {
        let opts = RunOptions {
            windows: w,
            warmup: SimTime::from_us(500),
            measure: SimTime::from_ms(1),
            seed: 42,
            lanes: 1,
        };
        let r = run_system(sys, HwParams::paper_testbed(), &opts, &mk);
        CurvePoint {
            windows: w,
            tput: r.tput_per_server,
            p50_us: r.p50_ns as f64 / 1000.0,
            p99_us: r.p99_ns as f64 / 1000.0,
            result: r,
        }
    };

    let render = |results: Vec<CurvePoint>| -> String {
        let curves: Vec<(System, Vec<CurvePoint>)> = systems
            .iter()
            .enumerate()
            .map(|(si, &s)| {
                (s, results[si * windows.len()..(si + 1) * windows.len()].to_vec())
            })
            .collect();
        curves_csv(&curves)
    };

    let serial = render(par_points(1, &points, run));
    let parallel = render(par_points(8, &points, run));
    assert_eq!(
        serial, parallel,
        "--jobs 8 sweep output diverged from --jobs 1"
    );
    assert!(serial.lines().count() == points.len() + 1);
}
