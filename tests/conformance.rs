//! Paper-shape conformance suite: pins the reproduction to the shapes the
//! paper reports, so silent behavioral drift fails loudly.
//!
//! Three layers of pinning:
//!
//! * **Table 2** — the data-structure lookup costs are deterministic
//!   integer measurements of the real tables, so they are asserted as
//!   *exact totals*: a change of a single object read or roundtrip
//!   anywhere in the probe stream fails the suite.
//! * **Figure 8 / Figure 9(a)** — end-to-end performance shapes
//!   (Xenic leads the baselines; each ablation step helps) asserted as
//!   orderings, which are robust to incidental retuning.
//! * **§4.2.3 phase anatomy** — the commit path of a single-shard
//!   transaction must fit a message-delay budget derived from the
//!   hardware parameters; an accidental extra roundtrip in validate or
//!   log blows the budget.
//!
//! Run with `cargo test --release --test conformance` (the Table 2 rows
//! populate hash tables with 10^5 keys; debug builds work but crawl).

use xenic::api::{make_key, ShipMode, TxnSpec, UpdateOp, Workload};
use xenic::harness::{run_xenic, run_xenic_cluster, RunOptions};
use xenic::XenicConfig;
use xenic_baselines::{run_baseline, BaselineKind};
use xenic_hw::HwParams;
use xenic_net::NetConfig;
use xenic_sim::{DetRng, SimTime, TraceConfig};
use xenic_store::robinhood::{RobinhoodConfig, RobinhoodTable};
use xenic_store::{ChainedTable, HopscotchTable, Value};
use xenic_workloads::{Retwis, RetwisConfig};

// ---- Table 2: exact lookup-cost pinning ----------------------------------
//
// Same recipes as the `table2_lookup` bench, at 1/10th scale (the
// statistics are occupancy-driven, not size-driven). All integer
// arithmetic: debug and release agree bit-for-bit.

const OCCUPANCY: f64 = 0.9;
const KEYS: usize = 100_000;
const PROBES: usize = 20_000;

/// (total objects read, total roundtrips) over the whole probe stream.
fn robinhood_totals(dm: Option<u32>) -> (usize, usize) {
    let capacity = (KEYS as f64 / OCCUPANCY) as usize;
    let mut t = RobinhoodTable::new(RobinhoodConfig {
        capacity,
        displacement_limit: dm,
        segment_slots: 4,
        inline_cap: 256,
        slot_value_bytes: 64,
    });
    let v = Value::filled(64, 1);
    for k in 0..KEYS as u64 {
        t.insert(k, v.clone());
    }
    let mut rng = DetRng::new(42);
    let (mut objects, mut rts) = (0usize, 0usize);
    for _ in 0..PROBES {
        let k = rng.below(KEYS as u64);
        let seg = t.segment_of_key(k);
        let tr = t.dma_lookup(k, t.seg_max_disp(seg), 1);
        assert!(tr.found.is_some(), "populated key must be found");
        objects += tr.objects_read;
        rts += tr.roundtrips;
    }
    (objects, rts)
}

fn hopscotch_totals(h: usize) -> (usize, usize) {
    let capacity = (KEYS as f64 / OCCUPANCY) as usize;
    let mut t = HopscotchTable::new(capacity, h, 64);
    let v = Value::filled(64, 1);
    for k in 0..KEYS as u64 {
        t.insert(k, v.clone());
    }
    let mut rng = DetRng::new(43);
    let (mut objects, mut rts) = (0usize, 0usize);
    for _ in 0..PROBES {
        let tr = t.remote_lookup(rng.below(KEYS as u64));
        assert!(tr.found.is_some());
        objects += tr.objects_read;
        rts += tr.roundtrips;
    }
    (objects, rts)
}

fn chained_totals(b: usize) -> (usize, usize) {
    let buckets = ((KEYS as f64 / OCCUPANCY) as usize).div_ceil(b);
    let mut t = ChainedTable::new(buckets, b, 64);
    let v = Value::filled(64, 1);
    for k in 0..KEYS as u64 {
        t.insert(k, v.clone());
    }
    let mut rng = DetRng::new(44);
    let (mut objects, mut rts) = (0usize, 0usize);
    for _ in 0..PROBES {
        let tr = t.remote_lookup(rng.below(KEYS as u64));
        assert!(tr.found.is_some());
        objects += tr.objects_read;
        rts += tr.roundtrips;
    }
    (objects, rts)
}

#[test]
fn table2_robinhood_lookup_costs_are_pinned_exactly() {
    // Xenic's Robinhood table with NIC d_i hints, Dm = 8 / 16 / 32.
    assert_eq!(robinhood_totals(Some(8)), (113_088, 20_362), "Dm=8 drifted");
    assert_eq!(robinhood_totals(Some(16)), (137_851, 20_066), "Dm=16 drifted");
    assert_eq!(robinhood_totals(Some(32)), (148_683, 20_000), "Dm=32 drifted");
}

#[test]
fn table2_baseline_lookup_costs_are_pinned_exactly() {
    // FaRM's Hopscotch (H=8) and DrTM+H's chained table (B = 4 / 8 / 16).
    assert_eq!(hopscotch_totals(8), (160_598, 20_515), "Hopscotch H=8 drifted");
    assert_eq!(chained_totals(4), (92_996, 23_249), "Chained B=4 drifted");
    assert_eq!(chained_totals(8), (176_096, 22_012), "Chained B=8 drifted");
    assert_eq!(chained_totals(16), (338_304, 21_144), "Chained B=16 drifted");
}

#[test]
fn table2_trends_match_the_paper() {
    // The paper's qualitative claims, independent of the pinned values:
    // larger Dm reads more objects but needs fewer roundtrips, and every
    // chained configuration needs more roundtrips than Robinhood.
    let r8 = robinhood_totals(Some(8));
    let r16 = robinhood_totals(Some(16));
    let r32 = robinhood_totals(Some(32));
    assert!(r8.0 < r16.0 && r16.0 < r32.0, "objects must grow with Dm");
    assert!(r8.1 > r16.1 && r16.1 > r32.1, "roundtrips must shrink with Dm");
    for b in [4, 8, 16] {
        assert!(
            chained_totals(b).1 > r32.1,
            "chained B={b} should pay more roundtrips than Robinhood"
        );
    }
}

// ---- Figures 8 and 9(a): end-to-end shape pinning ------------------------

#[test]
fn fig8_xenic_leads_every_baseline_on_retwis() {
    // Small-scale Figure 8 ordering: at a moderate-to-high fixed load,
    // Xenic's Retwis throughput must be at least the best of DrTM+H,
    // FaSST, and DrTM+R.
    let opts = RunOptions {
        windows: 48,
        warmup: SimTime::from_ms(2),
        measure: SimTime::from_ms(4),
        seed: 42,
        lanes: 1,
    };
    let params = HwParams::paper_testbed();
    let mk = |_: usize| -> Box<dyn Workload> { Box::new(Retwis::new(RetwisConfig::sim(6))) };
    let x = run_xenic(
        params.clone(),
        NetConfig::full(),
        XenicConfig::full(),
        &opts,
        mk,
    );
    for kind in [BaselineKind::DrtmH, BaselineKind::Fasst, BaselineKind::DrtmR] {
        let b = run_baseline(kind, params.clone(), &opts, mk);
        assert!(
            x.tput_per_server >= b.tput_per_server,
            "Xenic {:.0}/s/server must lead {kind:?} at {:.0}",
            x.tput_per_server,
            b.tput_per_server
        );
    }
}

#[test]
fn fig9a_each_ablation_step_helps() {
    // Figure 9(a) monotonicity: enabling smart remote ops, then Ethernet
    // aggregation, then async DMA must each not hurt Retwis throughput.
    // Same configs as the fig9_ablation bench, shorter measure window.
    let opts = RunOptions {
        windows: 64,
        warmup: SimTime::from_ms(2),
        measure: SimTime::from_ms(4),
        seed: 42,
        lanes: 1,
    };
    let base_cfg = XenicConfig::fig9_baseline();
    let smart = XenicConfig {
        smart_remote_ops: true,
        ..base_cfg
    };
    let steps: [(&str, XenicConfig, NetConfig); 4] = [
        ("baseline", base_cfg, NetConfig::baseline()),
        ("+smart remote ops", smart, NetConfig::baseline()),
        (
            "+eth aggregation",
            smart,
            NetConfig {
                async_dma: false,
                ..NetConfig::full()
            },
        ),
        ("+async DMA", smart, NetConfig::full()),
    ];
    let mut prev = 0.0f64;
    let mut prev_label = "";
    for (label, cfg, net) in steps {
        let r = run_xenic(
            HwParams::paper_testbed(),
            net,
            cfg,
            &opts,
            |_| Box::new(Retwis::new(RetwisConfig::sim(6))) as Box<dyn Workload>,
        );
        assert!(
            r.tput_per_server >= prev,
            "{label} ({:.0}/s) must not fall below {prev_label} ({prev:.0}/s)",
            r.tput_per_server
        );
        prev = r.tput_per_server;
        prev_label = label;
    }
}

// ---- §4.2.3 phase anatomy -------------------------------------------------

/// Workload of single-shard read+update transactions against one fixed
/// remote shard: the standard coordinator path, one primary, no multi-hop.
struct SingleShard {
    keys: u64,
}

impl Workload for SingleShard {
    fn next_txn(&mut self, node: usize, rng: &mut DetRng) -> TxnSpec {
        let shard = (node as u32 + 1) % 6; // always remote, always one shard
        TxnSpec {
            reads: vec![make_key(shard, rng.below(self.keys))],
            updates: vec![(make_key(shard, rng.below(self.keys)), UpdateOp::AddI64(1))],
            exec_host_ns: 150,
            exec_nic_ns: 480,
            ship: ShipMode::Nic,
            ..Default::default()
        }
    }

    fn value_bytes(&self) -> u32 {
        16
    }

    fn preload(&self, shard: u32) -> Vec<(u64, Value)> {
        (0..self.keys)
            .map(|i| (make_key(shard, i), Value::from_bytes(&0i64.to_le_bytes())))
            .collect()
    }
}

#[test]
fn phase_anatomy_fits_the_message_delay_budget() {
    // §4.2.3: for a single-shard transaction, validate is one NIC-to-NIC
    // roundtrip and log is one replication roundtrip plus the backup DMA
    // durability wait. Build the budget from first principles out of the
    // hardware parameters and demand the *median* commit tail
    // (Validate begin → Log end) fits it at low load. An accidental
    // extra roundtrip on either phase (~2 µs with handling) blows this.
    let p = HwParams::paper_testbed();
    // One NIC→NIC request/response: two wire flights, RPC handling on
    // each side, and up to one polling burst of batching delay per hop.
    let roundtrip =
        2 * p.wire_oneway_ns + 2 * p.nic_rpc_handle_ns + 2 * p.nic_poll_burst_ns;
    // The backup's durability DMA: submit + one element + write latency.
    let dma_write = p.dma_submit_ns + p.dma_element_ns + p.dma_write_latency_ns;
    // Validate roundtrip + log (replication roundtrip ∥ DMA, bounded by
    // their sum) + scheduling slack for core contention at 2 windows.
    let budget_ns = 2 * roundtrip + dma_write + 2_000;

    let multihop_off = XenicConfig {
        occ_multihop: false,
        ..XenicConfig::full()
    };
    let (_, cluster) = run_xenic_cluster(
        HwParams::paper_testbed(),
        NetConfig::full().with_trace(TraceConfig::spans().with_capacity(1 << 22)),
        multihop_off,
        &RunOptions {
            windows: 2,
            warmup: SimTime::from_ms(1),
            measure: SimTime::from_ms(3),
            seed: 42,
            lanes: 1,
        },
        |_| Box::new(SingleShard { keys: 3000 }) as Box<dyn Workload>,
    );

    // Commit tail per transaction: Validate begin → Log end.
    use std::collections::HashMap;
    let mut val_begin: HashMap<(u32, u64), SimTime> = HashMap::new();
    let mut log_end: HashMap<(u32, u64), SimTime> = HashMap::new();
    for s in cluster.rt.tracer().spans() {
        match s.name {
            "Validate" => {
                val_begin.insert((s.node, s.id), s.begin);
            }
            "Log" => {
                log_end.insert((s.node, s.id), s.end);
            }
            _ => {}
        }
    }
    let mut tails: Vec<u64> = log_end
        .iter()
        .filter_map(|(key, &end)| val_begin.get(key).map(|&b| end.since(b)))
        .collect();
    assert!(tails.len() > 500, "too few commit tails: {}", tails.len());
    tails.sort_unstable();
    let p50 = tails[tails.len() / 2];
    assert!(
        p50 <= budget_ns,
        "median commit tail {p50}ns exceeds the §4.2.3 budget {budget_ns}ns — \
         an extra roundtrip crept into validate or log"
    );
}
